"""Calibrated capacity planning: cores and store entries for N clients at λ.

The analytic replay (:func:`~repro.workload.drivers.replay_analytic`) can
sweep configurations the functional path could never run — thousands of
clients, hours of simulated traffic — but its answers are only as
credible as its :class:`~repro.workload.drivers.ServiceModel`. This
module closes that loop:

1. **Calibrate** — run a few *small* functional workloads against the
   real gateway, fit the model's service-time parameters from their
   measured :class:`~repro.runtime.serving.ServingReport`\\ s by least
   squares (``serve_seconds ≈ t_online·requests +
   t_demand·demand_mints`` across runs; refill mint time from the
   background-refill ledger).
2. **Validate** — replay a *held-out* schedule both ways and report the
   relative prediction error on throughput and latency, so every plan
   ships with the evidence for (or against) trusting it.
3. **Plan** — sweep the calibrated model over (clients, rate, workers,
   store entries) grids and return the cheapest configuration meeting an
   :class:`SLO`, with the full sweep table attached.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.workload.drivers import ServiceModel, replay_analytic
from repro.workload.generators import Schedule, poisson_schedule

__all__ = [
    "CalibratedModel",
    "SLO",
    "CapacityPlanner",
    "fit_service_times",
    "calibrate",
]


@dataclass(frozen=True)
class CalibratedModel:
    """Fitted service-time parameters plus how they were obtained."""

    online_seconds: float
    demand_mint_seconds: float
    refill_mint_seconds: float
    fit: dict = field(default_factory=dict)  # diagnostics (method, residual)

    def service_model(
        self,
        *,
        workers: int = 1,
        store_entries: int | None = None,
        prefill: int = 1,
        max_queue: int = 8,
    ) -> ServiceModel:
        return ServiceModel(
            online_seconds=self.online_seconds,
            demand_mint_seconds=self.demand_mint_seconds,
            refill_mint_seconds=self.refill_mint_seconds,
            workers=workers,
            store_entries=store_entries,
            prefill=prefill,
            max_queue=max_queue,
        )

    def predict(self, schedule: Schedule, **knobs) -> dict:
        """Analytic replay of a schedule under this model's parameters."""
        return replay_analytic(schedule, self.service_model(**knobs))

    def validate(self, schedule: Schedule, measured_report, **knobs) -> dict:
        """Predicted vs measured columns on a held-out run.

        ``measured_report`` is the ServingReport of a functional replay
        of the *same* schedule (its ``workloads[schedule.name]`` block is
        the measured side). Measured numbers are converted back to
        schedule time through the replay's ``time_scale`` so a slowed
        CI replay still compares apples to apples. Relative errors are
        what the acceptance gate (< 50% on throughput) checks.
        """
        measured = measured_report.workloads[schedule.name]
        predicted = self.predict(schedule, **knobs)
        scale = measured.get("time_scale", 1.0) or 1.0
        meas_goodput = measured["goodput_rps"] * scale
        meas_latency = measured["mean_latency"] / scale
        throughput_error = (
            abs(predicted["goodput_rps"] - meas_goodput) / meas_goodput
            if meas_goodput > 0
            else float("inf")
        )
        latency_error = (
            abs(predicted["mean_latency"] - meas_latency) / meas_latency
            if meas_latency > 0
            else float("inf")
        )
        return {
            "schedule": schedule.name,
            "predicted": predicted,
            "measured": measured,
            "measured_goodput_rps": round(meas_goodput, 6),
            "measured_mean_latency": round(meas_latency, 6),
            "throughput_error": round(throughput_error, 6),
            "latency_error": round(latency_error, 6),
        }

    def to_json_dict(self) -> dict:
        return {
            "online_seconds": round(self.online_seconds, 6),
            "demand_mint_seconds": round(self.demand_mint_seconds, 6),
            "refill_mint_seconds": round(self.refill_mint_seconds, 6),
            "fit": self.fit,
        }


def fit_service_times(
    reports, *, prefills=None, min_det: float = 1e-9
) -> CalibratedModel:
    """Least-squares fit of the service model over calibration runs.

    Each report contributes one observation ``serve_seconds ≈
    t_online · requests + t_demand · demand_mints``; the 2x2 normal
    equations solve for both parameters at once, so the calibration runs
    must vary their miss profile (e.g. one warm run, one cold). When the
    system is degenerate — all runs share one miss ratio — or the
    least-squares solution goes non-physical (a negative time), the fit
    falls back to direct per-request estimators: mean measured
    ``online_seconds`` and mean miss-path ``mint_seconds``. The refill
    mint time always comes from the refill ledger:
    ``Σ refill_seconds / Σ refill mints``. ``prefills`` names each run's
    prefill depth (scalar or one per report; the gateway's ``minted``
    counter includes prefill mints, which are not refills).
    """
    reports = list(reports)
    if not reports:
        raise ValueError("need at least one calibration run")
    if prefills is None:
        prefills = [1] * len(reports)
    elif isinstance(prefills, int):
        prefills = [prefills] * len(reports)
    if len(prefills) != len(reports):
        raise ValueError("prefills must match the number of reports")

    # Direct estimators (the fallback, and the refill time either way).
    all_rows = [r for report in reports for r in report.requests]
    miss_rows = [r for r in all_rows if not r.hit]
    online_direct = (
        sum(r.online_seconds for r in all_rows) / len(all_rows)
        if all_rows
        else 0.0
    )
    refill_time = sum(r.refill_seconds for r in reports)
    refill_count = sum(
        max(0, report.minted - report.num_clients * prefill)
        for report, prefill in zip(reports, prefills)
    )
    demand_direct = (
        sum(r.mint_seconds for r in miss_rows) / len(miss_rows)
        if miss_rows
        else (refill_time / refill_count if refill_count else 0.0)
    )
    refill_mint = (
        refill_time / refill_count if refill_count else demand_direct
    )

    # Least squares on the report-level totals.
    s11 = s12 = s22 = b1 = b2 = 0.0
    for report in reports:
        x1 = float(len(report.requests))
        x2 = float(report.demand_mints)
        y = report.serve_seconds
        s11 += x1 * x1
        s12 += x1 * x2
        s22 += x2 * x2
        b1 += x1 * y
        b2 += x2 * y
    det = s11 * s22 - s12 * s12
    method = "fallback-direct"
    online, demand = online_direct, demand_direct
    residual = None
    if det > min_det and s22 > 0:
        ls_online = (b1 * s22 - b2 * s12) / det
        ls_demand = (b2 * s11 - b1 * s12) / det
        if ls_online > 0 and ls_demand > 0:
            online, demand = ls_online, ls_demand
            method = "least-squares"
            residual = sum(
                (
                    report.serve_seconds
                    - online * len(report.requests)
                    - demand * report.demand_mints
                )
                ** 2
                for report in reports
            )
    if demand <= 0:
        demand = max(online, 1e-6)
    return CalibratedModel(
        online_seconds=online,
        demand_mint_seconds=demand,
        refill_mint_seconds=refill_mint,
        fit={
            "method": method,
            "runs": len(reports),
            "residual": round(residual, 9) if residual is not None else None,
            "online_direct": round(online_direct, 6),
            "demand_direct": round(demand_direct, 6),
            "refill_mints_observed": refill_count,
        },
    )


@dataclass(frozen=True)
class SLO:
    """What "good enough" means for a planned configuration."""

    p95_latency_seconds: float | None = None
    max_deferral_rate: float | None = None
    min_goodput_fraction: float = 0.9  # goodput >= fraction of offered rate

    def met_by(self, row: dict) -> bool:
        if (
            self.p95_latency_seconds is not None
            and row["latency_p95"] > self.p95_latency_seconds
        ):
            return False
        if (
            self.max_deferral_rate is not None
            and row["deferral_rate"] > self.max_deferral_rate
        ):
            return False
        offered = row.get("offered_rps", 0.0)
        if offered > 0 and row["goodput_rps"] < (
            self.min_goodput_fraction * offered
        ):
            return False
        return True

    def to_json_dict(self) -> dict:
        return {
            "p95_latency_seconds": self.p95_latency_seconds,
            "max_deferral_rate": self.max_deferral_rate,
            "min_goodput_fraction": self.min_goodput_fraction,
        }


class CapacityPlanner:
    """Sweep a calibrated model over configuration grids; pick the cheapest.

    Cost is a simple linear resource price — ``workers * core_cost +
    store_entries * entry_cost`` — enough to rank "more cores" against
    "more store" honestly; swap the coefficients for a real bill of
    materials.
    """

    def __init__(
        self,
        model: CalibratedModel,
        *,
        core_cost: float = 1.0,
        entry_cost: float = 0.05,
        prefill: int = 1,
        max_queue: int = 8,
    ):
        self.model = model
        self.core_cost = core_cost
        self.entry_cost = entry_cost
        self.prefill = prefill
        self.max_queue = max_queue

    def _cost(self, workers: int, store_entries: int) -> float:
        return workers * self.core_cost + store_entries * self.entry_cost

    def sweep(
        self,
        *,
        clients_grid,
        rate_grid,
        workers_grid,
        store_grid,
        horizon: float = 60.0,
        seed: int = 0,
    ) -> list[dict]:
        """Predicted columns for every grid point.

        ``rate_grid`` holds aggregate offered rates λ (requests/second,
        split uniformly across clients); ``store_grid`` store capacities
        in precompute entries. Each point generates a fresh seeded
        Poisson schedule over ``horizon`` and replays it analytically.
        """
        rows = []
        for clients in clients_grid:
            for rate in rate_grid:
                schedule = poisson_schedule(
                    clients,
                    rate / clients,
                    horizon,
                    seed=seed,
                    name=f"plan-c{clients}-r{rate:g}",
                )
                for workers in workers_grid:
                    for store_entries in store_grid:
                        predicted = self.model.predict(
                            schedule,
                            workers=workers,
                            store_entries=store_entries,
                            prefill=self.prefill,
                            max_queue=self.max_queue,
                        )
                        rows.append(
                            {
                                "clients": clients,
                                "rate_rps": rate,
                                "workers": workers,
                                "store_entries": store_entries,
                                "cost": round(
                                    self._cost(workers, store_entries), 6
                                ),
                                "latency_p50": predicted["latency_p50"],
                                "latency_p95": predicted["latency_p95"],
                                "latency_p99": predicted["latency_p99"],
                                "mean_latency": predicted["mean_latency"],
                                "deferral_rate": predicted["deferral_rate"],
                                "goodput_rps": predicted["goodput_rps"],
                                "offered_rps": predicted["offered_rps"],
                                "hit_rate": (
                                    round(
                                        predicted["hits"]
                                        / predicted["requests"],
                                        6,
                                    )
                                    if predicted["requests"]
                                    else 0.0
                                ),
                                "evictions": predicted["evictions"],
                            }
                        )
        return rows

    def plan(
        self,
        *,
        clients: int,
        rate: float,
        workers_grid,
        store_grid,
        slo: SLO,
        horizon: float = 60.0,
        seed: int = 0,
    ) -> dict:
        """The cheapest (workers, store) meeting the SLO at (clients, λ).

        Returns the decision plus the full candidate table — the
        ``choice`` is None when no grid point meets the SLO, which is an
        answer too ("this traffic needs a bigger grid").
        """
        candidates = self.sweep(
            clients_grid=[clients],
            rate_grid=[rate],
            workers_grid=workers_grid,
            store_grid=store_grid,
            horizon=horizon,
            seed=seed,
        )
        feasible = [row for row in candidates if slo.met_by(row)]
        feasible.sort(key=lambda row: (row["cost"], row["latency_p95"]))
        return {
            "clients": clients,
            "rate_rps": rate,
            "slo": slo.to_json_dict(),
            "choice": feasible[0] if feasible else None,
            "feasible": len(feasible),
            "candidates": candidates,
        }


def calibrate(
    network,
    params,
    pool=None,
    *,
    budget_mb: float = 8.0,
    clients: int = 2,
    requests: int = 2,
    base_seed: int = 0,
    gateway_max_queue: int | None = None,
    held_out: Schedule | None = None,
    store_root: str | None = None,
):
    """End-to-end calibration: measure, fit, validate on a held-out run.

    Runs two small functional workloads against a real gateway — a warm
    one (``prefill=1``, mostly hits) and a cold one (``prefill=0``,
    demand mints on the critical path) — fits
    :func:`fit_service_times` over their reports, then replays a
    held-out Poisson schedule *both* ways and reports the prediction
    error. Returns ``(model, result)`` where ``result`` is a JSON-safe
    dict: calibration run summaries, the held-out schedule (canonical
    JSON), validation errors, and wall-clock accounting.
    """
    import shutil
    import tempfile

    from repro.runtime.pool import PrecomputePool
    from repro.runtime.store import PrecomputeStore
    from repro.workload.drivers import replay_functional
    from repro.workload.generators import uniform_schedule

    own_pool = None
    if pool is None:
        pool = own_pool = PrecomputePool()
    made_root = store_root is None
    root = store_root or tempfile.mkdtemp(prefix="repro-calibrate-")
    budget = int(budget_mb * 1e6) or None
    t0 = time.perf_counter()
    try:
        runs = []
        run_specs = [
            ("calib-warm", 1),  # prefilled buffers: hit path dominates
            ("calib-cold", 0),  # empty buffers: demand mints dominate
        ]
        for name, prefill in run_specs:
            schedule = uniform_schedule(
                clients, requests, period=0.05, name=name
            )
            store = PrecomputeStore(f"{root}/{name}", byte_budget=budget)
            report = replay_functional(
                schedule,
                network,
                params,
                store,
                pool=pool,
                prefill=prefill,
                base_seed=base_seed,
                gateway_max_queue=gateway_max_queue,
            )
            runs.append((schedule, prefill, report))
        model = fit_service_times(
            [report for _, _, report in runs],
            prefills=[prefill for _, prefill, _ in runs],
        )
        if held_out is None:
            held_out = poisson_schedule(
                clients,
                [2.0 / clients] * clients,
                horizon=float(requests),
                seed=base_seed + 7,
                name="calib-heldout",
                max_per_client=requests,
            )
        store = PrecomputeStore(f"{root}/held-out", byte_budget=budget)
        held_report = replay_functional(
            held_out,
            network,
            params,
            store,
            pool=pool,
            prefill=1,
            base_seed=base_seed,
            gateway_max_queue=gateway_max_queue,
        )
        validation = model.validate(
            held_out,
            held_report,
            workers=pool.workers,
            prefill=1,
            max_queue=(
                gateway_max_queue if gateway_max_queue is not None else 8
            ),
        )
        result = {
            "model": model.to_json_dict(),
            "calibration_runs": [
                {
                    "schedule": schedule.name,
                    "prefill": prefill,
                    "summary": report.summary(),
                }
                for schedule, prefill, report in runs
            ],
            "held_out_schedule": held_out.to_json(),
            "held_out_summary": held_report.summary(),
            "validation": validation,
            "calibration_seconds": round(time.perf_counter() - t0, 3),
        }
        return model, result
    finally:
        if own_pool is not None:
            own_pool.close()
        if made_root:
            shutil.rmtree(root, ignore_errors=True)
