"""`python -m repro --workload ...` and `--plan`: the workload entry points.

Thin, printable wrappers over the engine: build a named schedule from
CLI knobs, replay it functionally against a real gateway (checking every
logit against the plaintext oracle), and emit a JSON artifact carrying
the canonical schedule plus the measured summary — or run the
calibrate → validate → sweep → plan pipeline and emit the planner
artifact. Both are what the CI ``workload-smoke`` job drives.
"""

from __future__ import annotations

import json

from repro.workload.generators import (
    BurstEnvelope,
    Schedule,
    closed_schedule,
    poisson_schedule,
    zipf_rates,
)

WORKLOAD_KINDS = ("poisson", "closed", "burst", "skewed")


def build_schedule(
    kind: str,
    *,
    clients: int,
    rate: float,
    horizon: float,
    requests: int,
    skew: float,
    think: float,
    seed: int,
) -> Schedule:
    """One named schedule per CLI workload kind.

    ``poisson`` is uniform open-loop; ``skewed`` gives client 0 the
    Zipf hot spot; ``burst`` layers a global on/off envelope over the
    skewed rates (the saturation special); ``closed`` issues ``requests``
    per client separated by exponential think time.
    """
    if kind == "closed":
        return closed_schedule(clients, requests, think, seed=seed,
                               name="closed")
    if kind == "poisson":
        rates: float | list[float] = rate / clients
    else:
        rates = zipf_rates(clients, rate, skew)
    burst = None
    if kind == "burst":
        burst = BurstEnvelope(
            on_seconds=horizon / 3,
            off_seconds=horizon / 3,
            off_factor=0.1,
            seed=seed + 1,
        )
    return poisson_schedule(
        clients,
        rates,
        horizon,
        seed=seed,
        name=kind,
        burst=burst,
        max_per_client=requests,
    )


def demo_workload(
    kind: str,
    *,
    clients: int = 3,
    rate: float = 4.0,
    horizon: float = 2.0,
    requests: int = 3,
    skew: float = 1.2,
    think: float = 0.2,
    seed: int = 0,
    workers: int | None = None,
    budget_mb: float = 8.0,
    gateway_max_queue: int | None = None,
    time_scale: float = 1.0,
    out_path: str | None = None,
):
    """Generate a schedule, replay it against a live gateway, verify, report.

    Every served logit vector is checked against the plaintext oracle
    (realistic traffic must never surface a stale or corrupted result).
    With ``out_path`` the run writes a JSON artifact holding the
    canonical schedule, the full report summary, and the per-workload
    columns — the bytes CI asserts on. Returns the ServingReport.
    """
    import shutil
    import tempfile

    from repro.core.lowering import lower_network, plaintext_reference
    from repro.runtime.pool import PrecomputePool
    from repro.runtime.serving import demo_network_and_params
    from repro.runtime.store import PrecomputeStore
    from repro.workload.drivers import draw_schedule_inputs, replay_functional

    if kind not in WORKLOAD_KINDS:
        raise ValueError(f"unknown workload kind {kind!r}")
    network, params = demo_network_and_params()
    schedule = build_schedule(
        kind,
        clients=clients,
        rate=rate,
        horizon=horizon,
        requests=requests,
        skew=skew,
        think=think,
        seed=seed,
    )
    inputs = draw_schedule_inputs(schedule, network, params)
    root = tempfile.mkdtemp(prefix="repro-workload-")
    try:
        store = PrecomputeStore(root, byte_budget=int(budget_mb * 1e6) or None)
        with PrecomputePool(workers=workers) as pool:
            print(
                f"workload {schedule.name!r}: {schedule.total_requests} "
                f"request(s) over {clients} client(s) "
                f"(counts {schedule.request_counts()}, {pool.workers} "
                f"worker(s), budget {budget_mb:g} MB, "
                f"time scale {time_scale:g}x)"
            )
            report = replay_functional(
                schedule,
                network,
                params,
                store,
                pool=pool,
                time_scale=time_scale,
                gateway_max_queue=gateway_max_queue,
                inputs=inputs,
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    lowered = lower_network(network, params.t)
    for request in report.requests:
        c = int(request.client[len("client"):])
        assert request.logits == plaintext_reference(
            lowered, inputs[c][request.index]
        ), f"{request.client} request {request.index} diverged from oracle"
    columns = report.workloads[schedule.name]
    print(f"all {len(report.requests)} results match the plaintext reference")
    print(
        f"  latency p50/p95/p99 {columns['latency_p50']:.3f}/"
        f"{columns['latency_p95']:.3f}/{columns['latency_p99']:.3f}s, "
        f"goodput {columns['goodput_rps']:.2f} rps "
        f"(offered {columns['offered_rps']:.2f})"
    )
    print(
        f"  admission: {report.requests_issued} issued = "
        f"{report.requests_admitted} admitted + "
        f"{report.requests_deferred} deferred + "
        f"{report.requests_rejected} rejected "
        f"(deferral rate {columns['deferral_rate']:.2f}, "
        f"client backoff {columns['retry_sleep_seconds']:.2f}s)"
    )
    if out_path:
        artifact = {
            "schedule": json.loads(schedule.to_json()),
            "summary": report.summary(),
        }
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
        print(f"  workload artifact written to {out_path}")
    return report


def demo_plan(
    *,
    clients: int = 8,
    rate: float = 3.0,
    workers: int | None = None,
    budget_mb: float = 8.0,
    slo_p95: float = 2.0,
    slo_deferral: float = 0.2,
    workers_grid=(1, 2, 4),
    store_grid=(4, 8, 16),
    horizon: float = 30.0,
    seed: int = 0,
    out_path: str | None = None,
):
    """Calibrate against measured runs, then plan capacity for (N, λ).

    Runs the full pipeline: small functional calibration runs → least
    squares fit → held-out validation (prediction error printed and
    recorded) → analytic sweep over (workers, store entries) →
    cheapest configuration meeting the SLO. Returns the JSON-safe
    planner artifact (also written to ``out_path`` when given).
    """
    from repro.runtime.pool import PrecomputePool
    from repro.runtime.serving import demo_network_and_params
    from repro.workload.planner import SLO, CapacityPlanner, calibrate

    network, params = demo_network_and_params()
    with PrecomputePool(workers=workers) as pool:
        print(
            f"calibrating service model ({pool.workers} worker(s), "
            f"budget {budget_mb:g} MB)..."
        )
        model, calibration = calibrate(
            network, params, pool=pool, budget_mb=budget_mb
        )
    validation = calibration["validation"]
    print(
        f"  fitted: online {model.online_seconds * 1e3:.0f} ms, demand mint "
        f"{model.demand_mint_seconds * 1e3:.0f} ms, refill mint "
        f"{model.refill_mint_seconds * 1e3:.0f} ms "
        f"({model.fit['method']})"
    )
    print(
        f"  held-out validation: throughput error "
        f"{validation['throughput_error']:.1%}, latency error "
        f"{validation['latency_error']:.1%}"
    )
    slo = SLO(p95_latency_seconds=slo_p95, max_deferral_rate=slo_deferral)
    planner = CapacityPlanner(model)
    plan = planner.plan(
        clients=clients,
        rate=rate,
        workers_grid=list(workers_grid),
        store_grid=list(store_grid),
        slo=slo,
        horizon=horizon,
        seed=seed,
    )
    choice = plan["choice"]
    if choice is None:
        print(
            f"  no grid configuration meets the SLO for {clients} client(s) "
            f"at {rate:g} rps — widen the grid or relax the SLO"
        )
    else:
        print(
            f"  plan for {clients} client(s) at {rate:g} rps: "
            f"{choice['workers']} worker(s), {choice['store_entries']} store "
            f"entries (cost {choice['cost']:g}) — predicted p95 "
            f"{choice['latency_p95']:.2f}s, goodput "
            f"{choice['goodput_rps']:.2f} rps, deferral rate "
            f"{choice['deferral_rate']:.2f}"
        )
    artifact = {"calibration": calibration, "plan": plan}
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
        print(f"  planner artifact written to {out_path}")
    return artifact
