"""Replay one schedule two ways: live gateway or discrete-event model.

The workload engine's core contract is *one schedule, two executions*:

* :func:`replay_functional` drives a real
  :class:`~repro.runtime.gateway.ServingGateway` over loopback TCP — one
  thread per client holding a single keep-alive
  :class:`~repro.runtime.gateway.GatewayClient`, sleeping to the
  schedule's arrival times (open-loop) or think gaps (closed-loop) and
  honoring BUSY/GOAWAY — and returns a measured
  :class:`~repro.runtime.serving.ServingReport`.
* :func:`replay_analytic` pushes the byte-identical
  :class:`~repro.workload.generators.Schedule` through the
  :mod:`repro.simulation` engine under a :class:`ServiceModel` — the
  calibrated service-time/mint-rate parameters — and predicts the same
  columns in simulated time.

Both report per-workload latency quantiles (p50/p95/p99 via the
telemetry :class:`~repro.telemetry.metrics.Histogram`), deferral rate,
and goodput, keyed by workload name, so the planner can compare
prediction against measurement number for number. The analytic side
deliberately reuses the gateway's own policy code
(:func:`~repro.runtime.gateway.pick_refill_client`,
:func:`~repro.runtime.gateway.adaptive_retry_after`) — the model and the
system share one admission/refill brain and differ only in what a
"second" costs.

Latency convention: open-loop latency is measured from the *scheduled*
arrival (lateness under overload counts as queueing — the standard
open-loop convention, immune to coordinated omission); closed-loop
latency is measured from issue, since a closed loop cannot fall behind
its own schedule.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.crypto.rng import SecureRandom
from repro.runtime.state import derive_worker_seed
from repro.simulation.engine import Environment, Resource, Timeout
from repro.telemetry.metrics import Histogram
from repro.workload.generators import MODE_OPEN, Schedule

__all__ = [
    "ServiceModel",
    "draw_schedule_inputs",
    "replay_functional",
    "replay_analytic",
]


def draw_schedule_inputs(schedule: Schedule, network, params,
                         input_seed: int = 1) -> list[list[list[int]]]:
    """Deterministic per-client input vectors for a schedule's requests.

    Client c's j-th input is the j-th consecutive draw from
    ``SecureRandom(derive_worker_seed(input_seed, c))`` — the exact
    convention of :meth:`ServingLoop.draw_inputs`, so a per-client
    sequential reference run (and the plaintext oracle) sees the same
    vectors the workload replay served.
    """
    size = network.input_shape.elements
    counts = schedule.request_counts()
    inputs = []
    for c in range(schedule.num_clients):
        rng = SecureRandom(derive_worker_seed(input_seed, c))
        inputs.append(
            [rng.field_vector(size, params.t) for _ in range(counts[c])]
        )
    return inputs


def _workload_columns(
    schedule: Schedule,
    latencies: list[float],
    *,
    issued: int,
    deferred: int,
    rejected: int,
    makespan: float,
    time_scale: float = 1.0,
) -> dict:
    """The per-workload report columns both executions share."""
    hist = Histogram()
    for latency in latencies:
        hist.observe(latency)
    completed = len(latencies)
    return {
        "mode": schedule.mode,
        "requests": completed,
        "latency_p50": round(hist.quantile(0.50), 6),
        "latency_p95": round(hist.quantile(0.95), 6),
        "latency_p99": round(hist.quantile(0.99), 6),
        "mean_latency": round(hist.sum / hist.count, 6) if hist.count else 0.0,
        "deferral_rate": round(deferred / issued, 6) if issued else 0.0,
        "rejected": rejected,
        "goodput_rps": round(completed / makespan, 6) if makespan > 0 else 0.0,
        "offered_rps": round(schedule.offered_rate() / time_scale, 6)
        if time_scale > 0
        else 0.0,
        "makespan_seconds": round(makespan, 6),
        "time_scale": time_scale,
    }


# -- functional execution ---------------------------------------------------------


def replay_functional(
    schedule: Schedule,
    network,
    params,
    store,
    pool=None,
    *,
    garbler: str = "client",
    prefill: int = 1,
    base_seed: int = 0,
    input_seed: int = 1,
    time_scale: float = 1.0,
    gateway_max_queue: int | None = None,
    max_request_deferrals: int | None = None,
    model_id: str = "serving",
    timeout: float = 600.0,
    inputs: list[list[list[int]]] | None = None,
):
    """Replay a schedule against a live gateway; returns a ServingReport.

    One driver thread per client opens a single keep-alive connection
    and issues that client's requests at (scaled) schedule times; BUSY
    deferrals are honored inside :meth:`GatewayClient.request` with the
    server's adaptive retry hint plus decorrelated jitter. The gateway's
    refill caps follow the schedule's per-client request counts, so a
    skewed schedule earns skewed buffers. The returned report carries
    merged client-side logits and a ``workloads[schedule.name]`` column
    block (latency quantiles, deferral rate, goodput).

    ``time_scale`` stretches (>1) or compresses (<1) the schedule's
    clock — a saturation schedule generated at 10 rps can replay at
    0.25x to hammer a slow CI host, without changing the schedule bytes.
    """
    from repro.core.lowering import lower_network
    from repro.runtime.gateway import GatewayClient, ServingGateway

    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    if inputs is None:
        inputs = draw_schedule_inputs(schedule, network, params, input_seed)
    counts = schedule.request_counts()
    total = schedule.total_requests
    gateway = ServingGateway(
        network,
        params,
        schedule.num_clients,
        store,
        pool=pool,
        garbler=garbler,
        prefill=prefill,
        base_seed=base_seed,
        model_id=model_id,
        expected_per_client=counts,
        max_queue=gateway_max_queue,
        max_request_deferrals=max_request_deferrals,
    )
    client_lowered = lower_network(
        network, params.t, backend=params.backend, shape_only=True
    )
    lanes = schedule.per_client()
    results: dict[tuple[str, int], list[int]] = {}
    rows: list[tuple[int, int, float, float]] = []  # (c, j, scheduled, done)
    rows_lock = threading.Lock()
    errors: list[BaseException] = []
    clients_ready = threading.Barrier(schedule.num_clients + 1)
    start_evt = threading.Event()
    origin = [0.0]
    client_ledger = {
        "issued": 0, "deferred": 0, "rejected": 0, "retry_sleep_seconds": 0.0,
    }

    def drive(c: int) -> None:
        cid = gateway.client_id(c)
        try:
            client = GatewayClient(
                gateway.host,
                gateway.port,
                network,
                params,
                garbler=garbler,
                client_id=cid,
                seed=derive_worker_seed(base_seed + 0xC11E, c),
                lowered=client_lowered,
            )
            try:
                clients_ready.wait(timeout=60.0)
                start_evt.wait(timeout=60.0)
                t0 = origin[0]
                for a in lanes[c]:
                    if schedule.mode == MODE_OPEN:
                        # Sleep to the scheduled instant; if we are late
                        # (service or backoff overran), issue immediately
                        # — open-loop lateness is queueing, not a skipped
                        # arrival.
                        scheduled = t0 + a.at * time_scale
                        delay = scheduled - time.perf_counter()
                        if delay > 0:
                            time.sleep(delay)
                    else:
                        if a.think > 0:
                            time.sleep(a.think * time_scale)
                        scheduled = time.perf_counter()
                    logits = client.request(
                        inputs[c][a.index], request_index=a.index
                    )
                    done = time.perf_counter()
                    with rows_lock:
                        results[(cid, a.index)] = logits
                        rows.append((c, a.index, scheduled, done))
            finally:
                local = client.local_stats()
                with rows_lock:
                    client_ledger["issued"] += local["issued"]
                    client_ledger["deferred"] += local["deferred"]
                    client_ledger["rejected"] += local["rejected"]
                    client_ledger["retry_sleep_seconds"] += (
                        local["retry_sleep_seconds"]
                    )
                client.close()
        except threading.BrokenBarrierError:
            pass  # another driver failed during setup; it holds the error
        except BaseException as exc:  # surfaced after the serve loop
            errors.append(exc)
            clients_ready.abort()

    gateway.start()
    try:
        threads = [
            threading.Thread(target=drive, args=(c,), daemon=True)
            for c in range(schedule.num_clients)
        ]
        for t in threads:
            t.start()
        try:
            clients_ready.wait(timeout=60.0)
        except threading.BrokenBarrierError:
            pass
        origin[0] = time.perf_counter()
        start_evt.set()
        gateway.serve(total, timeout=timeout, abort=lambda: bool(errors))
        for t in threads:
            t.join(timeout=60.0)
        gateway.check_refills()
    finally:
        gateway.stop()
    if errors:
        raise RuntimeError(
            f"{len(errors)} workload driver(s) failed replaying "
            f"{schedule.name!r}"
        ) from errors[0]
    report = gateway.report()
    for request in report.requests:
        request.logits = results.get((request.client, request.index), [])
    latencies = [done - scheduled for _, _, scheduled, done in rows]
    makespan = (
        max(done for _, _, _, done in rows) - origin[0] if rows else 0.0
    )
    columns = _workload_columns(
        schedule,
        latencies,
        issued=report.requests_issued,
        deferred=report.requests_deferred,
        rejected=report.requests_rejected,
        makespan=makespan,
        time_scale=time_scale,
    )
    columns["busy_retries"] = client_ledger["deferred"]
    columns["retry_sleep_seconds"] = round(
        client_ledger["retry_sleep_seconds"], 6
    )
    report.workloads[schedule.name] = columns
    return report


# -- analytic execution -----------------------------------------------------------


@dataclass(frozen=True)
class ServiceModel:
    """What a second costs: the calibrated parameters the simulator runs on.

    ``online_seconds`` is one online phase on the (serialized) serving
    thread; ``demand_mint_seconds`` one miss-path offline phase;
    ``refill_mint_seconds`` one background refill mint on a pool worker.
    ``workers`` bounds concurrent mints, ``store_entries`` the store's
    capacity in precompute entries (None = unbounded),
    ``max_queue``/``retry_floor``/``retry_cap`` mirror the gateway's
    admission knobs.
    """

    online_seconds: float
    demand_mint_seconds: float
    refill_mint_seconds: float
    workers: int = 1
    store_entries: int | None = None
    prefill: int = 1
    max_queue: int = 8
    retry_floor: float = 0.05
    retry_cap: float = 5.0
    wait_poll_seconds: float = 0.05  # WAIT_STORE retry granularity

    def to_json_dict(self) -> dict:
        return {
            "online_seconds": round(self.online_seconds, 6),
            "demand_mint_seconds": round(self.demand_mint_seconds, 6),
            "refill_mint_seconds": round(self.refill_mint_seconds, 6),
            "workers": self.workers,
            "store_entries": self.store_entries,
            "prefill": self.prefill,
            "max_queue": self.max_queue,
        }


def replay_analytic(schedule: Schedule, model: ServiceModel) -> dict:
    """Replay a schedule through the discrete-event engine; returns columns.

    Structure mirrors the real gateway one to one: a capacity-1 serving
    resource (the selector thread serializes online phases), a
    ``workers``-wide mint resource, per-client buffers drained on hits
    and refilled by a background worker that picks clients with the
    *actual* :func:`pick_refill_client` policy, FIFO cross-client
    eviction under ``store_entries``, backlog-gated admission deferring
    with the *actual* :func:`adaptive_retry_after` hint, and a
    WAIT_STORE hold when a miss has a refill already in flight. The
    returned dict carries the same column block as the functional
    replay, plus predicted hit/demand/eviction counters.
    """
    from repro.runtime.gateway import adaptive_retry_after, pick_refill_client

    env = Environment()
    C = schedule.num_clients
    counts = schedule.request_counts()
    total = schedule.total_requests
    serving = Resource(env, 1)
    mint_slots = Resource(env, max(1, model.workers))
    state = {
        "buffered": [0] * C,
        "pending": [0] * C,
        "credits": [0] * C,
        "consumed": [0] * C,
        "minted": [0] * C,
        "waiting": 0,
        "completed": 0,
        "issued": 0,
        "admitted": 0,
        "deferred": 0,
        "hits": 0,
        "demand": 0,
        "evictions": 0,
        "last_completion": 0.0,
    }
    admit_order: list[int] = []  # admission-ordered entries (FIFO eviction)
    latencies: list[float] = []

    def admit(c: int) -> None:
        if model.store_entries is not None:
            if model.store_entries < 1:
                return  # budget admits no entry: every request misses
            while sum(state["buffered"]) >= model.store_entries:
                victim = admit_order.pop(0)
                state["buffered"][victim] -= 1
                state["evictions"] += 1
        state["buffered"][c] += 1
        admit_order.append(c)

    def take(c: int) -> None:
        state["buffered"][c] -= 1
        admit_order.remove(c)  # oldest entry of this client

    def backlog() -> int:
        return (
            state["waiting"] + sum(state["credits"]) + sum(state["pending"])
        )

    def may_mint(c: int) -> bool:
        return state["minted"][c] + state["credits"][c] < counts[c]

    # Prefill: round-robin, instantaneous at t=0 (the functional run
    # brackets prefill outside the serve window too).
    for _ in range(model.prefill):
        for c in range(C):
            admit(c)
            state["minted"][c] += 1

    def mint_proc(c: int):
        grant = mint_slots.request()
        yield grant
        yield Timeout(env, model.refill_mint_seconds)
        mint_slots.release()
        state["pending"][c] -= 1
        admit(c)

    def refill_proc():
        while state["completed"] < total:
            elapsed = max(env.now, 1e-9)
            rates = [state["consumed"][c] / elapsed for c in range(C)]
            depth = [
                state["buffered"][c] + state["pending"][c] for c in range(C)
            ]
            c = pick_refill_client(state["credits"], depth, rates)
            if c is None:
                yield Timeout(env, 0.05)
                continue
            state["credits"][c] -= 1
            state["minted"][c] += 1
            state["pending"][c] += 1
            env.process(mint_proc(c))
            yield Timeout(env, 0.0)

    def client_proc(c: int, lane):
        for a in lane:
            if schedule.mode == MODE_OPEN:
                delay = a.at - env.now
                if delay > 0:
                    yield Timeout(env, delay)
                scheduled = a.at
            else:
                if a.think > 0:
                    yield Timeout(env, a.think)
                scheduled = env.now
            state["issued"] += 1
            while backlog() > model.max_queue:
                state["deferred"] += 1
                retry = adaptive_retry_after(
                    backlog(),
                    model.max_queue,
                    model.refill_mint_seconds,
                    model.workers,
                    model.retry_floor,
                    model.retry_cap,
                )
                yield Timeout(env, retry)
                state["issued"] += 1
            state["admitted"] += 1
            hit = False
            if state["buffered"][c] > 0:
                take(c)
                hit = True
            elif state["pending"][c] > 0 or state["credits"][c] > 0:
                # WAIT_STORE: hold the offer for the in-flight refill.
                state["waiting"] += 1
                while state["buffered"][c] == 0 and (
                    state["pending"][c] > 0 or state["credits"][c] > 0
                ):
                    yield Timeout(env, model.wait_poll_seconds)
                state["waiting"] -= 1
                if state["buffered"][c] > 0:
                    take(c)
                    hit = True
            if hit:
                state["hits"] += 1
            else:
                state["demand"] += 1
                grant = mint_slots.request()
                yield grant
                yield Timeout(env, model.demand_mint_seconds)
                mint_slots.release()
            grant = serving.request()
            yield grant
            yield Timeout(env, model.online_seconds)
            serving.release()
            state["consumed"][c] += 1
            if may_mint(c):
                state["credits"][c] += 1
            state["completed"] += 1
            state["last_completion"] = env.now
            latencies.append(env.now - scheduled)

    lanes = schedule.per_client()
    for c in range(C):
        if lanes[c]:
            env.process(client_proc(c, lanes[c]))
    env.process(refill_proc())
    env.run()

    columns = _workload_columns(
        schedule,
        latencies,
        issued=state["issued"],
        deferred=state["deferred"],
        rejected=0,
        makespan=state["last_completion"],
    )
    columns.update(
        {
            "hits": state["hits"],
            "demand_mints": state["demand"],
            "evictions": state["evictions"],
            "minted": sum(state["minted"]),
            "issued": state["issued"],
            "admitted": state["admitted"],
            "deferred": state["deferred"],
        }
    )
    return columns
