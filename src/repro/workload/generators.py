"""Seeded arrival-process generators emitting typed request schedules.

The serving demos so far drain uniform round-robin requests, which never
stresses the admission, refill-priority, or eviction machinery. This
module generates *realistic* traffic as data: every generator is a pure
seeded function emitting a :class:`Schedule` — a typed, JSON-canonical,
per-client request timetable — that downstream drivers replay. One
schedule, two executions: the functional driver replays it against the
live gateway (wall clock), the analytic driver replays the byte-identical
object through the discrete-event engine (simulated clock), and the
capacity planner compares the two.

Generator taxonomy:

* :func:`uniform_schedule` — evenly spaced arrivals (the legacy
  round-robin drain, expressed as a schedule).
* :func:`poisson_schedule` — open-loop Poisson per client, optionally
  with per-client rates (pass :func:`zipf_rates` for hot-client skew)
  and a :class:`BurstEnvelope` on/off (MMPP-style) rate modulation.
* :func:`closed_schedule` — closed-loop with think time: each client
  issues its next request a think-gap *after the previous completion*,
  so offered load self-regulates with service capacity.

All randomness flows through :class:`~repro.crypto.rng.SecureRandom`
streams hash-derived per (seed, client), so the same seed reproduces the
same schedule byte for byte — the property every replay test pins.

This module absorbed the orphaned ``repro/simulation/workload.py``
(:class:`PoissonWorkload`, :func:`deterministic_arrivals`,
:class:`InferenceRequest` live here now; the old path re-exports them).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.crypto.rng import SecureRandom
from repro.runtime.state import derive_worker_seed

__all__ = [
    "Arrival",
    "Schedule",
    "BurstEnvelope",
    "zipf_rates",
    "uniform_schedule",
    "poisson_schedule",
    "closed_schedule",
    "InferenceRequest",
    "PoissonWorkload",
    "deterministic_arrivals",
]

MODE_OPEN = "open"
MODE_CLOSED = "closed"

_SCHEDULE_VERSION = 1


@dataclass(frozen=True)
class Arrival:
    """One scheduled request of one client.

    ``at`` is the arrival offset in seconds from schedule start. In an
    open-loop schedule it is the instant the request must be *issued*
    regardless of earlier requests' fates; in a closed-loop schedule it
    is the nominal offset (cumulative think time) and ``think`` carries
    the gap the client waits after its previous completion before
    issuing. Open-loop arrivals carry ``think == 0.0``.
    """

    client: int
    index: int  # per-client request index (0-based, consecutive)
    at: float
    think: float = 0.0

    def to_row(self) -> list:
        return [self.client, self.index, round(self.at, 9), round(self.think, 9)]

    @classmethod
    def from_row(cls, row) -> "Arrival":
        client, index, at, think = row
        return cls(client=int(client), index=int(index), at=float(at),
                   think=float(think))


@dataclass(frozen=True)
class Schedule:
    """A typed per-client request timetable, the unit both drivers consume.

    ``arrivals`` is globally sorted by ``(at, client, index)`` and each
    client's own indexes are consecutive from zero — invariants checked
    at construction, so a driver can trust them. :meth:`to_json` emits a
    canonical (sorted-keys, fixed-float) encoding: two schedules are the
    same workload iff their JSON bytes are identical, which is how the
    one-schedule-two-executions tests pin that the functional gateway
    run and the analytic replay consumed the very same object.
    """

    name: str
    mode: str  # MODE_OPEN or MODE_CLOSED
    num_clients: int
    horizon: float  # generation horizon (open) / nominal span (closed)
    seed: int
    arrivals: tuple[Arrival, ...]
    meta: dict = field(default_factory=dict)  # generator knobs (JSON-safe)

    def __post_init__(self) -> None:
        if self.mode not in (MODE_OPEN, MODE_CLOSED):
            raise ValueError(f"unknown schedule mode {self.mode!r}")
        if self.num_clients < 1:
            raise ValueError("schedule needs at least one client")
        next_index = [0] * self.num_clients
        previous = (-1.0, -1, -1)
        for a in self.arrivals:
            if not 0 <= a.client < self.num_clients:
                raise ValueError(f"arrival names client {a.client} of "
                                 f"{self.num_clients}")
            if a.index != next_index[a.client]:
                raise ValueError(
                    f"client {a.client} indexes not consecutive: expected "
                    f"{next_index[a.client]}, got {a.index}"
                )
            next_index[a.client] += 1
            key = (a.at, a.client, a.index)
            if key < previous:
                raise ValueError("arrivals not sorted by (at, client, index)")
            previous = key
            if a.at < 0 or a.think < 0:
                raise ValueError("arrival times and think gaps must be >= 0")

    @property
    def total_requests(self) -> int:
        return len(self.arrivals)

    def request_counts(self) -> list[int]:
        """Requests per client (the refill caps a bounded run mints to)."""
        counts = [0] * self.num_clients
        for a in self.arrivals:
            counts[a.client] += 1
        return counts

    def per_client(self) -> list[list[Arrival]]:
        """Each client's arrivals in issue order."""
        per = [[] for _ in range(self.num_clients)]
        for a in self.arrivals:
            per[a.client].append(a)
        for lane in per:
            lane.sort(key=lambda a: a.index)
        return per

    def offered_rate(self) -> float:
        """Aggregate offered request rate over the schedule's span (rps)."""
        span = self.span()
        return self.total_requests / span if span > 0 else 0.0

    def span(self) -> float:
        """Last nominal arrival offset (falls back to the horizon)."""
        if not self.arrivals:
            return self.horizon
        return max(self.horizon, self.arrivals[-1].at) or max(
            a.at for a in self.arrivals
        )

    def to_json(self) -> str:
        """Canonical JSON: byte-identical iff the schedules are identical."""
        return json.dumps(
            {
                "version": _SCHEDULE_VERSION,
                "name": self.name,
                "mode": self.mode,
                "num_clients": self.num_clients,
                "horizon": round(self.horizon, 9),
                "seed": self.seed,
                "meta": self.meta,
                "arrivals": [a.to_row() for a in self.arrivals],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        data = json.loads(text)
        version = data.get("version")
        if version != _SCHEDULE_VERSION:
            raise ValueError(
                f"schedule version skew: this build reads v{_SCHEDULE_VERSION}, "
                f"the blob is v{version}"
            )
        return cls(
            name=data["name"],
            mode=data["mode"],
            num_clients=data["num_clients"],
            horizon=data["horizon"],
            seed=data["seed"],
            arrivals=tuple(Arrival.from_row(r) for r in data["arrivals"]),
            meta=data.get("meta", {}),
        )


def _client_rng(seed: int, client: int) -> SecureRandom:
    """Independent per-(schedule, client) stream — client c's arrivals
    never change when another client is added or re-parameterized."""
    return SecureRandom(derive_worker_seed(seed, client))


def zipf_rates(num_clients: int, total_rate: float, skew: float) -> list[float]:
    """Per-client rates with Zipf hot-client skew, summing to ``total_rate``.

    Client c's share is proportional to ``1 / (c + 1) ** skew`` — client 0
    is the hottest. ``skew=0`` degenerates to uniform rates. These are the
    per-client rate knobs that stress ``pick_refill_client``: the hot
    client should earn earlier (and under depth-aware refill, deeper)
    refills than the tail.
    """
    if num_clients < 1:
        raise ValueError("need at least one client")
    if total_rate <= 0:
        raise ValueError("total rate must be positive")
    if skew < 0:
        raise ValueError("skew must be >= 0")
    weights = [1.0 / (c + 1) ** skew for c in range(num_clients)]
    scale = total_rate / sum(weights)
    return [w * scale for w in weights]


@dataclass(frozen=True)
class BurstEnvelope:
    """MMPP-style on/off rate modulation for open-loop generators.

    The envelope alternates exponentially-distributed ON windows (mean
    ``on_seconds``, full rate) and OFF windows (mean ``off_seconds``,
    rate scaled by ``off_factor``). Arrivals are generated at the full
    rate and thinned during OFF windows — exact Poisson thinning, so the
    modulated process is a true piecewise-Poisson MMPP and the expected
    duty cycle is ``on_seconds / (on_seconds + off_seconds)``.
    """

    on_seconds: float
    off_seconds: float
    off_factor: float = 0.0  # residual rate multiplier inside OFF windows
    seed: int = 0

    def __post_init__(self) -> None:
        if self.on_seconds <= 0 or self.off_seconds <= 0:
            raise ValueError("on/off window means must be positive")
        if not 0.0 <= self.off_factor <= 1.0:
            raise ValueError("off_factor must be in [0, 1]")

    @property
    def duty_cycle(self) -> float:
        return self.on_seconds / (self.on_seconds + self.off_seconds)

    def windows(self, horizon: float) -> list[tuple[float, float, bool]]:
        """Deterministic ``(start, end, is_on)`` tiling of ``[0, horizon)``."""
        rng = SecureRandom(derive_worker_seed(self.seed, 0xB1257))
        out = []
        t, on = 0.0, True
        while t < horizon:
            mean = self.on_seconds if on else self.off_seconds
            end = min(horizon, t + rng.exponential(mean))
            out.append((t, end, on))
            t, on = end, not on
        return out

    def meta(self) -> dict:
        return {
            "on_seconds": self.on_seconds,
            "off_seconds": self.off_seconds,
            "off_factor": self.off_factor,
            "seed": self.seed,
        }


def _is_on(windows: list[tuple[float, float, bool]], t: float) -> bool:
    """Binary-search the envelope tiling (windows are contiguous)."""
    lo, hi = 0, len(windows) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if windows[mid][1] <= t:
            lo = mid + 1
        else:
            hi = mid
    return windows[lo][2] if windows else True


def uniform_schedule(
    num_clients: int,
    requests_per_client: int,
    period: float,
    name: str = "uniform",
    stagger: bool = True,
) -> Schedule:
    """Evenly spaced arrivals — the legacy round-robin drain as data.

    Each client issues a request every ``period`` seconds; ``stagger``
    offsets client c by ``c * period / num_clients`` so the aggregate
    stream is evenly interleaved (the exact schedule the pre-workload
    serving demos implicitly drained).
    """
    if requests_per_client < 1:
        raise ValueError("need at least one request per client")
    if period <= 0:
        raise ValueError("period must be positive")
    arrivals = []
    for c in range(num_clients):
        offset = (c * period / num_clients) if stagger else 0.0
        for j in range(requests_per_client):
            arrivals.append(Arrival(client=c, index=j, at=offset + j * period))
    arrivals.sort(key=lambda a: (a.at, a.client, a.index))
    horizon = requests_per_client * period
    return Schedule(
        name=name, mode=MODE_OPEN, num_clients=num_clients, horizon=horizon,
        seed=0, arrivals=tuple(arrivals),
        meta={"kind": "uniform", "period": period, "stagger": stagger},
    )


def poisson_schedule(
    num_clients: int,
    rate: float | list[float],
    horizon: float,
    seed: int = 0,
    name: str = "poisson",
    burst: BurstEnvelope | None = None,
    max_per_client: int | None = None,
) -> Schedule:
    """Open-loop Poisson arrivals, optionally skewed and burst-modulated.

    ``rate`` is either one per-client rate (requests/second) or a list of
    per-client rates (e.g. from :func:`zipf_rates`). With a
    :class:`BurstEnvelope`, arrivals are thinned during OFF windows by
    exact Poisson thinning (every client shares one envelope — a global
    traffic burst, not per-client weather). ``max_per_client`` caps each
    client's request count so a saturation schedule stays boundable.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    rates = list(rate) if isinstance(rate, (list, tuple)) else [
        float(rate)
    ] * num_clients
    if len(rates) != num_clients:
        raise ValueError(f"got {len(rates)} rates for {num_clients} clients")
    if any(r <= 0 for r in rates):
        raise ValueError("per-client rates must be positive")
    windows = burst.windows(horizon) if burst is not None else []
    arrivals = []
    for c in range(num_clients):
        rng = _client_rng(seed, c)
        t, j = 0.0, 0
        while True:
            t += rng.exponential(1.0 / rates[c])
            if t >= horizon:
                break
            if burst is not None and not _is_on(windows, t):
                # OFF window: keep the candidate with probability
                # off_factor (exact thinning; the draw happens on the
                # client's own stream so determinism survives).
                if rng.uniform() >= burst.off_factor:
                    continue
            arrivals.append(Arrival(client=c, index=j, at=t))
            j += 1
            if max_per_client is not None and j >= max_per_client:
                break
    arrivals.sort(key=lambda a: (a.at, a.client, a.index))
    meta = {
        "kind": "poisson",
        "rates": [round(r, 9) for r in rates],
        "burst": burst.meta() if burst is not None else None,
        "max_per_client": max_per_client,
    }
    return Schedule(
        name=name, mode=MODE_OPEN, num_clients=num_clients, horizon=horizon,
        seed=seed, arrivals=tuple(arrivals), meta=meta,
    )


def closed_schedule(
    num_clients: int,
    requests_per_client: int,
    think_mean: float,
    seed: int = 0,
    name: str = "closed",
    distribution: str = "exponential",
) -> Schedule:
    """Closed-loop schedule: think-time gaps, issued after completions.

    Each client carries ``requests_per_client`` requests; request j's
    ``think`` is the gap the client waits after request j-1 *completes*
    (request 0 thinks from schedule start). ``at`` records the nominal
    cumulative think offset — the arrival time if service were
    instantaneous — which keeps the schedule sortable and lets the
    analytic driver report idle-system latencies. ``distribution`` is
    ``"exponential"`` (mean ``think_mean``) or ``"fixed"``.
    """
    if requests_per_client < 1:
        raise ValueError("need at least one request per client")
    if think_mean < 0:
        raise ValueError("think mean must be >= 0")
    if distribution not in ("exponential", "fixed"):
        raise ValueError(f"unknown think distribution {distribution!r}")
    arrivals = []
    horizon = 0.0
    for c in range(num_clients):
        rng = _client_rng(seed, c)
        nominal = 0.0
        for j in range(requests_per_client):
            if distribution == "exponential" and think_mean > 0:
                think = rng.exponential(think_mean)
            else:
                think = think_mean
            nominal += think
            arrivals.append(Arrival(client=c, index=j, at=nominal, think=think))
        horizon = max(horizon, nominal)
    arrivals.sort(key=lambda a: (a.at, a.client, a.index))
    return Schedule(
        name=name, mode=MODE_CLOSED, num_clients=num_clients, horizon=horizon,
        seed=seed, arrivals=tuple(arrivals),
        meta={
            "kind": "closed",
            "think_mean": think_mean,
            "distribution": distribution,
            "requests_per_client": requests_per_client,
        },
    )


# -- absorbed from repro/simulation/workload.py ----------------------------------
#
# The analytic system model (core/system.py, core/multiclient.py) predates
# the schedule abstraction and draws its arrivals on the fly from these;
# they live here now so every arrival process has one home. The old
# module path re-exports them.


@dataclass
class InferenceRequest:
    """One inference request and its measured latency decomposition."""

    index: int
    arrival_time: float
    service_start: float | None = None
    completion_time: float | None = None
    offline_seconds: float = 0.0
    online_seconds: float = 0.0
    used_precompute: bool = False

    @property
    def queue_seconds(self) -> float:
        if self.service_start is None:
            return 0.0
        return self.service_start - self.arrival_time

    @property
    def latency(self) -> float:
        if self.completion_time is None:
            raise ValueError("request has not completed")
        return self.completion_time - self.arrival_time


@dataclass
class PoissonWorkload:
    """Exponential inter-arrival request generator.

    ``mean_interarrival`` is in seconds (the paper quotes workloads as
    "1 request per N minutes", i.e. mean_interarrival = 60 N).
    """

    mean_interarrival: float
    horizon: float
    seed: int = 0
    _rng: SecureRandom = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0:
            raise ValueError("mean inter-arrival must be positive")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        self._rng = SecureRandom(self.seed)

    def arrival_times(self) -> list[float]:
        """All arrival instants within the horizon."""
        times = []
        t = self._rng.exponential(self.mean_interarrival)
        while t < self.horizon:
            times.append(t)
            t += self._rng.exponential(self.mean_interarrival)
        return times

    @property
    def rate_per_minute(self) -> float:
        return 60.0 / self.mean_interarrival


def deterministic_arrivals(period: float, horizon: float) -> list[float]:
    """Evenly spaced arrivals (for validation against analytic queueing)."""
    times = []
    t = period
    while t < horizon:
        times.append(t)
        t += period
    return times
