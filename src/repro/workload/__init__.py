"""Workload engine: arrival generators, replay drivers, capacity planner.

Three layers, one contract:

* :mod:`repro.workload.generators` — seeded arrival processes (Poisson,
  closed-loop think time, Zipf skew, burst overlays) emitting a typed
  :class:`Schedule`.
* :mod:`repro.workload.drivers` — *one schedule, two executions*: a
  functional replay against the live gateway and an analytic replay
  through the discrete-event engine, reporting the same columns.
* :mod:`repro.workload.planner` — least-squares calibration of the
  analytic :class:`ServiceModel` from measured reports, held-out
  validation, and SLO-driven capacity sweeps.
"""

from repro.workload.drivers import (
    ServiceModel,
    draw_schedule_inputs,
    replay_analytic,
    replay_functional,
)
from repro.workload.generators import (
    Arrival,
    BurstEnvelope,
    InferenceRequest,
    PoissonWorkload,
    Schedule,
    closed_schedule,
    deterministic_arrivals,
    poisson_schedule,
    uniform_schedule,
    zipf_rates,
)
from repro.workload.planner import (
    SLO,
    CalibratedModel,
    CapacityPlanner,
    calibrate,
    fit_service_times,
)

__all__ = [
    "Arrival",
    "BurstEnvelope",
    "CalibratedModel",
    "CapacityPlanner",
    "InferenceRequest",
    "PoissonWorkload",
    "SLO",
    "Schedule",
    "ServiceModel",
    "calibrate",
    "closed_schedule",
    "deterministic_arrivals",
    "draw_schedule_inputs",
    "fit_service_times",
    "poisson_schedule",
    "replay_analytic",
    "replay_functional",
    "uniform_schedule",
    "zipf_rates",
]
