"""The pre-redesign monolithic protocol, frozen as a parity reference.

This is the PR-4-era :class:`HybridProtocol` — both parties simulated in
one object over one in-memory :class:`~repro.network.channel.Channel`,
with a single interleaved RNG stream — kept verbatim (minus the pool and
store plumbing, which never changed a transcript byte) so the session
redesign's acceptance gate stays enforceable forever: the parity suite
asserts that :class:`~repro.core.session.ClientSession` +
:class:`~repro.core.session.ServerSession` over an
``InMemoryTransport`` reproduce this class's per-phase channel transcript
and logits exactly.

Do not extend this module. New protocol work belongs in
:mod:`repro.core.session`; this file only shrinks if the parity gate is
ever retired.
"""

from __future__ import annotations

from repro.core.lowering import (
    lower_network,
    next_linear_index,
    plaintext_reference,
    validate_packing,
)
from repro.core.session import ProtocolCounters, resolve_protocol_params
from repro.crypto.modmath import matvec_mod, mod_add_vec, mod_sub_vec
from repro.crypto.rng import SecureRandom
from repro.gc.circuit import Circuit, int_to_bits, words_to_int
from repro.gc.evaluate import Evaluator
from repro.gc.garble import GarbledCircuit, Garbler
from repro.gc.relu import ReluCircuitSpec, build_relu_circuit
from repro.he.bfv import BfvContext
from repro.he.encoder import BatchEncoder
from repro.he.linear import HomomorphicLinearEvaluator
from repro.he.params import BfvParams
from repro.network.channel import CLIENT, SERVER, Channel
from repro.ot.extension import iknp_transfer

from repro.backend import backend_for


class _Bundle:
    """Everything the monolith stored for one garbled ReLU layer."""

    __slots__ = ("circuits", "encodings", "evaluator_labels", "mask_index")

    def __init__(self, circuits, encodings, evaluator_labels, mask_index):
        self.circuits = circuits
        self.encodings = encodings
        self.evaluator_labels = evaluator_labels
        self.mask_index = mask_index


class MonolithHybridProtocol:
    """One in-process object playing both protocol roles (frozen reference)."""

    def __init__(
        self,
        network,
        params: BfvParams | None = None,
        garbler: str = "server",
        seed: int | None = None,
        truncate_bits: int = 0,
        backend: str | None = None,
        representation: str | None = None,
    ):
        if garbler not in ("server", "client"):
            raise ValueError("garbler must be 'server' or 'client'")
        self.params = resolve_protocol_params(params, backend, representation)
        self.garbler_role = garbler
        self.modulus = self.params.t
        self.bits = self.modulus.bit_length()
        self.truncate_bits = truncate_bits
        self.lowered = lower_network(
            network, self.modulus, backend=self.params.backend
        )
        self._backend_pref = self.params.backend
        self._vectorize_gc = (
            backend_for(self.modulus, prefer=self._backend_pref).name == "numpy"
        )
        self.rng = SecureRandom(seed)
        self.channel = Channel(field_bytes=(self.bits + 7) // 8)
        self.counters = ProtocolCounters()
        self._offline_done = False
        self._relu_circuit_cache: Circuit | None = None
        validate_packing(self.lowered, self.params.row_size)

    # -- offline phase ---------------------------------------------------------

    def run_offline(self) -> None:
        self.channel.set_phase("offline")
        ctx = BfvContext(self.params, self.rng.spawn())
        encoder = BatchEncoder(self.params)
        sk, pk = ctx.keygen()
        gk = ctx.galois_keygen(sk, [encoder.galois_element_for_rotation(1)])
        self.channel.send(CLIENT, pk)
        self.channel.send(CLIENT, gk)
        self.channel.recv(SERVER)
        self.channel.recv(SERVER)
        evaluator = HomomorphicLinearEvaluator(ctx, encoder, gk)

        p = self.modulus
        self.client_r = [
            self.rng.field_vector(lin.n_in, p) for lin in self.lowered.linears
        ]
        self.server_s = [
            self.rng.field_vector(lin.n_out, p) for lin in self.lowered.linears
        ]
        self.client_linear_share = []
        for lin, r, s in zip(self.lowered.linears, self.client_r, self.server_s):
            packed = evaluator.pack_vector(r)
            ct = ctx.encrypt(pk, encoder.encode(packed))
            self.counters.he_encryptions += 1
            self.channel.send(CLIENT, ct)
            ct = self.channel.recv(SERVER)
            ct_y = evaluator.matvec(ct, lin.matrix)
            row = self.params.row_size
            s_row = list(s) + [0] * (row - lin.n_out)
            ct_out = ctx.sub_plain(ct_y, encoder.encode(s_row + s_row))
            self.channel.send(SERVER, ct_out)
            ct_out = self.channel.recv(CLIENT)
            share = encoder.decode(ctx.decrypt(sk, ct_out))[: lin.n_out]
            self.counters.he_decryptions += 1
            self.client_linear_share.append(share)
        self.counters.he_rotations = evaluator.rotations_performed
        self.counters.he_plain_mults = evaluator.plain_mults_performed

        self._relu_bundles: dict[int, _Bundle] = {}
        relu_steps = [
            (pos, lin_idx)
            for pos, (kind, lin_idx) in enumerate(self.lowered.steps)
            if kind == "relu"
        ]
        circuit = self._relu_circuit()
        layer_plan = []
        for pos, lin_idx in relu_steps:
            mask_index = next_linear_index(self.lowered, pos)
            n = self.lowered.linears[lin_idx].n_out
            if len(self.client_r[mask_index]) != n:
                raise ValueError("mask length mismatch (unsupported layer between)")
            layer_plan.append((pos, lin_idx, mask_index, n, self.rng.spawn()))
        batches = [
            Garbler(rng).garble_batch(circuit, n, vectorize=self._vectorize_gc)
            for _, _, _, n, rng in layer_plan
        ]
        for (pos, lin_idx, mask_index, n, _), batch in zip(layer_plan, batches):
            self._offline_relu_layer(pos, lin_idx, mask_index, batch)
        self._offline_done = True

    def _relu_circuit(self) -> Circuit:
        if self._relu_circuit_cache is None:
            mask_owner = "evaluator" if self.garbler_role == "server" else "garbler"
            spec = ReluCircuitSpec(
                bits=self.bits,
                modulus=self.modulus,
                mask_owner=mask_owner,
                truncate_bits=self.truncate_bits,
            )
            self._relu_circuit_cache = build_relu_circuit(spec)
        return self._relu_circuit_cache

    def _offline_relu_layer(self, pos, lin_idx, mask_index, garbled_batch) -> None:
        n = self.lowered.linears[lin_idx].n_out
        circuit = self._relu_circuit()
        circuits = [garbled for garbled, _ in garbled_batch]
        encodings = [encoding for _, encoding in garbled_batch]
        self.counters.gc_circuits_garbled += n

        if self.garbler_role == "server":
            wire_circuits = [
                GarbledCircuit(c.circuit, c.tables, []) for c in circuits
            ]
            self.channel.send(SERVER, wire_circuits)
            self.channel.recv(CLIENT)
            evaluator_labels = self._client_labels_via_ot(
                circuit, circuits, encodings, lin_idx, mask_index, sender=SERVER
            )
            self._relu_bundles[pos] = _Bundle(
                wire_circuits, encodings, evaluator_labels, mask_index
            )
        else:
            self.channel.send(CLIENT, circuits)
            self.channel.recv(SERVER)
            garbler_labels = []
            for j, (garbled, encoding) in enumerate(zip(circuits, encodings)):
                share_bits = int_to_bits(self.client_linear_share[lin_idx][j], self.bits)
                mask_bits = int_to_bits(self.client_r[mask_index][j], self.bits)
                labels = Garbler.encode_inputs(
                    encoding, garbled.circuit, share_bits + mask_bits
                )
                garbler_labels.append(labels)
            self.channel.send(
                CLIENT, [list(lbls.values()) for lbls in garbler_labels]
            )
            self.channel.recv(SERVER)
            self._relu_bundles[pos] = _Bundle(
                circuits, encodings, garbler_labels, mask_index
            )

    def _client_labels_via_ot(
        self, circuit: Circuit, circuits, encodings, lin_idx, mask_index, sender
    ) -> list[dict[int, bytes]]:
        pairs, choices = [], []
        for j, encoding in enumerate(encodings):
            share_bits = int_to_bits(self.client_linear_share[lin_idx][j], self.bits)
            mask_bits = int_to_bits(self.client_r[mask_index][j], self.bits)
            for wire, bit in zip(circuit.evaluator_inputs, share_bits + mask_bits):
                pairs.append((encoding.label_for(wire, 0), encoding.label_for(wire, 1)))
                choices.append(bit)
        received, transcript = iknp_transfer(pairs, choices, self.rng.spawn())
        self.counters.ots_performed += len(pairs)
        receiver = CLIENT if sender == SERVER else SERVER
        self.channel.send(receiver, None, nbytes=transcript.column_bytes)
        self.channel.recv(sender)
        self.channel.send(
            sender, None, nbytes=transcript.base_ot_bytes + transcript.ciphertext_bytes
        )
        self.channel.recv(receiver)

        labels: list[dict[int, bytes]] = []
        per = len(circuit.evaluator_inputs)
        for j, (garbled, encoding) in enumerate(zip(circuits, encodings)):
            chunk = received[j * per : (j + 1) * per]
            label_map = dict(zip(circuit.evaluator_inputs, chunk))
            label_map[Circuit.CONST_ZERO] = encoding.label_for(Circuit.CONST_ZERO, 0)
            label_map[Circuit.CONST_ONE] = encoding.label_for(Circuit.CONST_ONE, 1)
            labels.append(label_map)
        return labels

    # -- online phase ------------------------------------------------------------

    def run_online(self, x: list[int]) -> list[int]:
        if not self._offline_done:
            raise RuntimeError("offline phase must run before online phase")
        if len(x) != self.lowered.input_size:
            raise ValueError("input size mismatch")
        self.channel.set_phase("online")
        p = self.modulus
        masked = mod_sub_vec(x, self.client_r[0], p, prefer=self._backend_pref)
        self.channel.send(CLIENT, masked)
        server_vec = self.channel.recv(SERVER)

        evaluator = Evaluator()
        for pos, (kind, lin_idx) in enumerate(self.lowered.steps):
            if kind == "linear":
                lin = self.lowered.linears[lin_idx]
                s = self.server_s[lin_idx]
                server_vec = mod_add_vec(
                    matvec_mod(lin.matrix, server_vec, p, prefer=self._backend_pref),
                    s,
                    p,
                    prefer=self._backend_pref,
                )
            else:
                server_vec = self._online_relu(pos, lin_idx, server_vec, evaluator)

        self.channel.send(SERVER, server_vec)
        final_server_share = self.channel.recv(CLIENT)
        final_client_share = self.client_linear_share[self.lowered.steps[-1][1]]
        return mod_add_vec(
            final_server_share, final_client_share, p, prefer=self._backend_pref
        )

    def _online_relu(self, pos, lin_idx, server_share, evaluator) -> list[int]:
        bundle = self._relu_bundles[pos]
        if self.garbler_role == "server":
            out = []
            all_labels = []
            for j, value in enumerate(server_share):
                encoding = bundle.encodings[j]
                circuit = bundle.circuits[j].circuit
                bits = int_to_bits(value, self.bits)
                all_labels.append(
                    [encoding.label_for(w, b) for w, b in zip(circuit.garbler_inputs, bits)]
                )
            self.channel.send(SERVER, all_labels)
            all_labels = self.channel.recv(CLIENT)
            labels_batch = []
            for j, garbler_labels in enumerate(all_labels):
                circuit = bundle.circuits[j].circuit
                labels = dict(bundle.evaluator_labels[j])
                labels.update(zip(circuit.garbler_inputs, garbler_labels))
                labels_batch.append(labels)
            output_label_batch = evaluator.evaluate_batch(
                bundle.circuits, labels_batch, vectorize=self._vectorize_gc
            )
            self.counters.gc_circuits_evaluated += len(labels_batch)
            self.channel.send(CLIENT, output_label_batch)
            output_label_batch = self.channel.recv(SERVER)
            for j, out_labels in enumerate(output_label_batch):
                bits = Garbler.decode_output_labels(
                    bundle.encodings[j], bundle.circuits[j].circuit, out_labels
                )
                out.append(words_to_int(bits))
            return out

        pairs, choices = [], []
        for j, value in enumerate(server_share):
            encoding = bundle.encodings[j]
            circuit = bundle.circuits[j].circuit
            bits = int_to_bits(value, self.bits)
            for wire, bit in zip(circuit.evaluator_inputs, bits):
                pairs.append((encoding.label_for(wire, 0), encoding.label_for(wire, 1)))
                choices.append(bit)
        received, transcript = iknp_transfer(pairs, choices, self.rng.spawn())
        self.counters.ots_performed += len(pairs)
        self.channel.send(SERVER, None, nbytes=transcript.column_bytes)
        self.channel.recv(CLIENT)
        self.channel.send(
            CLIENT, None, nbytes=transcript.base_ot_bytes + transcript.ciphertext_bytes
        )
        self.channel.recv(SERVER)

        per = self.bits
        labels_batch = []
        for j in range(len(server_share)):
            circuit = bundle.circuits[j].circuit
            labels = dict(
                zip(
                    [Circuit.CONST_ZERO, Circuit.CONST_ONE] + circuit.garbler_inputs,
                    bundle.evaluator_labels[j].values(),
                )
            )
            chunk = received[j * per : (j + 1) * per]
            labels.update(zip(circuit.evaluator_inputs, chunk))
            labels_batch.append(labels)
        output_label_batch = evaluator.evaluate_batch(
            bundle.circuits, labels_batch, vectorize=self._vectorize_gc
        )
        self.counters.gc_circuits_evaluated += len(labels_batch)
        return [
            words_to_int(evaluator.decode(garbled, out_labels))
            for garbled, out_labels in zip(bundle.circuits, output_label_batch)
        ]

    # -- reference ---------------------------------------------------------------

    def plaintext_reference(self, x: list[int]) -> list[int]:
        return plaintext_reference(
            self.lowered, x, self.truncate_bits, prefer=self._backend_pref
        )
