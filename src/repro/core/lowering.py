"""Lowering a layered network to the field-matrix program the 2PC runs.

Shared by the role-separated sessions (:mod:`repro.core.session`), the
:class:`~repro.core.protocol.HybridProtocol` façade, and the frozen
pre-redesign reference (:mod:`repro.core._monolith`): one definition of
the alternating linear/ReLU program, its packing rules, and the exact
plaintext evaluation the protocol is validated against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import backend_for
from repro.crypto.modmath import matvec_mod
from repro.he.linear import HomomorphicLinearEvaluator
from repro.nn.layers import Conv2d, Flatten, Linear, ReLU
from repro.nn.network import Network


@dataclass
class LoweredLinear:
    """A linear layer lowered to an explicit field matrix.

    ``matrix`` is backend-native: a ``uint64`` ndarray under the numpy
    backend (so HE diagonal extraction and the online matvec are
    vectorized gathers/matmuls) or a list of row lists under python — or
    ``None`` in a *shape-only* lowering, the client's view of the
    program: layer widths are public, the weights never materialize.
    """

    name: str
    n_in: int
    n_out: int
    matrix: "np.ndarray | list[list[int]] | None" = None


@dataclass
class LoweredNetwork:
    """Alternating linear/ReLU program extracted from a Network.

    ``steps`` is a list of ("linear", index) / ("relu", index) tags;
    shape-only layers (Flatten) vanish during lowering.
    """

    linears: list[LoweredLinear]
    steps: list[tuple[str, int]]
    modulus: int
    input_size: int
    output_size: int


def lower_network(
    network: Network, modulus: int, backend: str | None = None,
    shape_only: bool = False,
) -> LoweredNetwork:
    """Lower a stride-1 conv/FC/ReLU/Flatten network to field matrices.

    Matrices are stored in the representation native to the compute
    backend resolved for ``modulus`` (see :class:`LoweredLinear`).
    ``shape_only=True`` skips materializing the matrices entirely — the
    client session lowers this way: it needs only the (public) layer
    widths and ReLU placement, never the weights, and skips the
    conv-as-matrix expansion that dominates setup cost.
    """
    be = backend_for(modulus, prefer=backend)
    linears: list[LoweredLinear] = []
    steps: list[tuple[str, int]] = []
    shape = network.input_shape

    def add_linear(layer, matrix_fn) -> None:
        out_shape = layer.output_shape(shape)
        steps.append(("linear", len(linears)))
        linears.append(
            LoweredLinear(
                layer.name,
                n_in=shape.elements,
                n_out=out_shape.elements,
                matrix=None if shape_only else be.asmatrix(matrix_fn(), modulus),
            )
        )

    for layer in network.layers:
        if isinstance(layer, Conv2d):
            if layer.stride != 1:
                raise ValueError("functional runner supports stride-1 convs only")
            in_shape = (shape.channels, shape.height, shape.width)
            add_linear(
                layer,
                lambda layer=layer, in_shape=in_shape: (
                    HomomorphicLinearEvaluator.conv_as_matrix(
                        np.asarray(layer.weights), in_shape, layer.padding, modulus
                    )
                ),
            )
        elif isinstance(layer, Linear):
            add_linear(
                layer,
                lambda layer=layer: [
                    [int(w) % modulus for w in row]
                    for row in np.asarray(layer.weights)
                ],
            )
        elif isinstance(layer, ReLU):
            if not steps or steps[-1][0] != "linear":
                raise ValueError("ReLU must follow a linear layer")
            steps.append(("relu", steps[-1][1]))
        elif isinstance(layer, Flatten):
            pass  # pure reshape; the flattened ordering matches lowering
        else:
            raise ValueError(
                f"functional runner cannot lower layer {type(layer).__name__}"
            )
        shape = layer.output_shape(shape)
    if steps[-1][0] != "linear":
        raise ValueError("network must end with a linear layer")
    return LoweredNetwork(
        linears=linears,
        steps=steps,
        modulus=modulus,
        input_size=network.input_shape.elements,
        output_size=network.output_shape.elements,
    )


def next_linear_index(lowered: LoweredNetwork, relu_pos: int) -> int:
    """The linear layer whose input mask covers the ReLU at ``relu_pos``."""
    for kind, idx in lowered.steps[relu_pos + 1 :]:
        if kind == "linear":
            return idx
    raise ValueError("ReLU with no following linear layer")


def validate_packing(lowered: LoweredNetwork, row_size: int) -> None:
    """Reject layer widths the HE batching layout cannot pack."""
    for lin in lowered.linears:
        if row_size % lin.n_in != 0:
            raise ValueError(
                f"{lin.name}: width {lin.n_in} must divide row size {row_size}"
            )
        if lin.n_out > row_size:
            raise ValueError(f"{lin.name}: height {lin.n_out} exceeds row size")


def plaintext_reference(
    lowered: LoweredNetwork,
    x: list[int],
    truncate_bits: int = 0,
    prefer: str | None = None,
) -> list[int]:
    """Field-exact plaintext evaluation of the lowered program."""
    p = lowered.modulus
    vec = [v % p for v in x]
    threshold = (p + 1) // 2
    for kind, lin_idx in lowered.steps:
        lin = lowered.linears[lin_idx]
        if kind == "linear":
            vec = matvec_mod(lin.matrix, vec, p, prefer=prefer)
        else:
            vec = [(v >> truncate_bits) if v < threshold else 0 for v in vec]
    return vec
