"""Role-separated protocol sessions: independent client/server state machines.

The pre-redesign :class:`HybridProtocol` simulated both parties inside one
Python object over an in-memory queue, which made a two-process (let alone
two-host) deployment structurally impossible and forced the serving loop
to treat a whole protocol phase as one indivisible call. This module
splits the DELPHI hybrid protocol into two independent state machines —
:class:`ClientSession` and :class:`ServerSession` — that communicate
*only* through serialized wire messages (:mod:`repro.network.serialize`)
over a pluggable :class:`~repro.network.transport.Transport`:

* each session exposes explicit phase methods — ``start_offline()`` /
  ``step()`` / ``start_online(x)`` / ``finish()`` — so a driver can
  interleave many sessions message-by-message (the serving loop overlaps
  refill mints with online drains exactly this way);
* ``step()`` advances the session until it blocks on the transport or the
  phase completes, so the same state machine runs under a single-threaded
  scheduler (``InMemoryTransport``, loopback sockets) or a blocking
  two-process deployment (``SocketTransport``);
* every message a session sends or receives is charged to its own
  :class:`~repro.network.channel.Channel` with the same analytic sizes
  the monolith charged, so per-phase byte accounting is *identical* to
  the pre-redesign transcripts (enforced by the parity suite in
  ``tests/test_session_transport.py``).

Fidelity notes. This is a functional reproduction of the paper's system
characterization, not a hardened deployment: the IKNP extension is
executed by the label-holding party after the chooser ships its choice
bits over the wire (the monolith computed it jointly in one call and put
nothing on the wire — the *charged* byte volumes are the real
extension's, from :func:`repro.ot.extension.iknp_wire_bytes`, but the
exchanged bits would leak the chooser's shares to a real adversary, so
the socket deployments demonstrate the system shape and byte volumes,
not a security property). The client session's lowering is *shape-only*:
layer widths and ReLU placement are public, and no weight matrix ever
materializes client-side.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.backend import backend_for
from repro.core.lowering import (
    LoweredNetwork,
    lower_network,
    next_linear_index,
    validate_packing,
)
from repro.crypto.modmath import matvec_mod, mod_add_vec, mod_sub_vec
from repro.crypto.rng import SecureRandom
from repro.gc.circuit import Circuit, int_to_bits, words_to_int
from repro.gc.evaluate import Evaluator
from repro.gc.garble import GarbledCircuit, Garbler, InputEncoding
from repro.gc.relu import ReluCircuitSpec, build_relu_circuit
from repro.he.bfv import BfvContext
from repro.he.encoder import BatchEncoder
from repro.he.linear import HomomorphicLinearEvaluator
from repro.he.params import BfvParams, toy_params
from repro.network.channel import CLIENT, SERVER, Channel
from repro.network.serialize import (
    deserialize_bit_vector,
    deserialize_ciphertext,
    deserialize_circuit_batch,
    deserialize_field_vector,
    deserialize_galois_keys,
    deserialize_label_lists,
    deserialize_labels,
    deserialize_public_key,
    serialize_bit_vector,
    serialize_ciphertext,
    serialize_circuit_batch,
    serialize_field_vector,
    serialize_galois_keys,
    serialize_label_lists,
    serialize_labels,
    serialize_public_key,
)
from repro.ot.extension import iknp_transfer, iknp_wire_bytes
from repro.telemetry import TRACER, now_us, section

# step() results
DONE = "done"
WAITING = "waiting"

# Session lifecycle states. A session is *connection*-scoped and serves
# many requests over its lifetime; each request walks
# NEW → [OFFLINE →] READY → ONLINE → COMPLETE, and
# ``reset_for_request()`` re-arms a COMPLETE session back to NEW while
# keeping the connection-scoped state (transport, channel accounting,
# counters, lowering, circuit cache, RNG stream, pool wiring).
LIFE_NEW = "new"
LIFE_OFFLINE = "offline"
LIFE_READY = "ready"
LIFE_ONLINE = "online"
LIFE_COMPLETE = "complete"


@dataclass
class ReluBundle:
    """Everything one party stores for one garbled ReLU layer.

    Each session holds only its role's slice: the garbler keeps
    ``encodings``; the evaluator keeps ``circuits`` plus the label
    material it received (``evaluator_labels``). Unused fields are None.
    """

    circuits: list[GarbledCircuit] | None
    encodings: list[InputEncoding] | None
    evaluator_labels: list[dict[int, bytes]] | None
    mask_index: int  # which linear layer's r masks this ReLU's output


@dataclass
class ProtocolCounters:
    """Operation counters accumulated during a run."""

    he_encryptions: int = 0
    he_decryptions: int = 0
    he_rotations: int = 0
    he_plain_mults: int = 0
    gc_circuits_garbled: int = 0
    gc_circuits_evaluated: int = 0
    ots_performed: int = 0

    def merged_with(self, other: "ProtocolCounters") -> "ProtocolCounters":
        out = ProtocolCounters()
        for f in fields(ProtocolCounters):
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        return out


def resolve_protocol_params(
    params: BfvParams | None,
    backend: str | None = None,
    representation: str | None = None,
) -> BfvParams:
    """The parameter set a protocol actually runs, overrides applied.

    'bigint' forces the one-vector oracle ring; 'rns' forces CRT residues
    (params must carry a chain); 'auto' re-opens the per-params heuristic.
    """
    params = params or toy_params(n=256)
    if backend is None and representation is None:
        return params
    from dataclasses import replace

    overrides = {}
    if backend is not None:
        overrides["backend"] = backend
    if representation is not None:
        overrides["representation"] = representation
    return replace(params, **overrides)


def make_phase_pool(backend_pref: str | None, params: BfvParams, workers: int):
    """A PrecomputePool carrying the protocol's *effective* selections.

    A worker's initializer re-reads its environment (dropping the
    parent's programmatic set_backend / a params-level override), so an
    explicit backend or representation choice must travel with the pool.
    One definition shared by the façade and standalone sessions.
    """
    from repro.backend import active_backend_name
    from repro.runtime.pool import PrecomputePool

    backend = backend_pref
    if not backend or backend == "auto":
        backend = active_backend_name()
    return PrecomputePool(
        workers=workers,
        backend=backend,
        representation=params.resolve_representation(),
    )


def role_seed(seed: int | None, role: str) -> int | None:
    """Derive one role's RNG seed from a protocol-level seed.

    Hash-derived per role so the two sessions of one protocol never share
    (or structurally correlate) a stream; None stays None (OS entropy).
    """
    if seed is None:
        return None
    from repro.runtime.state import derive_worker_seed

    return derive_worker_seed(seed, 0 if role == CLIENT else 1)


class ProtocolSession:
    """Common machinery of the two role sessions (state, stepping, accounting).

    A session is a resumable state machine: ``start_offline()`` /
    ``start_online(...)`` arm a phase, ``step()`` advances it until the
    session either needs a frame the transport has not delivered yet
    (returns :data:`WAITING`) or the phase completes (returns
    :data:`DONE`), and ``finish()`` collects the phase result. The
    blocking convenience wrappers ``run_offline()`` / ``run_online()``
    drive a phase to completion on transports that can block (sockets).
    """

    role: str  # CLIENT or SERVER, set by the subclass
    # Whether this role's lowering materializes the weight matrices. The
    # client's view is shape-only: widths and ReLU placement are public,
    # the weights never leave the server.
    needs_weights = True

    def __init__(
        self,
        network,
        params: BfvParams | None = None,
        garbler: str = "server",
        seed: int | None = None,
        truncate_bits: int = 0,
        backend: str | None = None,
        representation: str | None = None,
        transport=None,
        channel: Channel | None = None,
        workers: int | None = None,
        pool=None,
        lowered: LoweredNetwork | None = None,
    ):
        if garbler not in ("server", "client"):
            raise ValueError("garbler must be 'server' or 'client'")
        self.params = resolve_protocol_params(params, backend, representation)
        self.garbler_role = garbler
        self.modulus = self.params.t
        self.bits = self.modulus.bit_length()
        self.truncate_bits = truncate_bits
        # ``lowered`` lets a caller that already holds a lowering reuse it;
        # otherwise the client lowers shape-only (no weight matrices ever
        # materialize on its side) while the server pays the full
        # conv-as-matrix expansion it needs for the homomorphic matvec.
        self.lowered: LoweredNetwork = (
            lowered
            if lowered is not None
            else lower_network(
                network,
                self.modulus,
                backend=self.params.backend,
                shape_only=not self.needs_weights,
            )
        )
        # Resolved once: share arithmetic and GC batching follow the same
        # per-protocol preference the HE layer uses, not just the global.
        self._backend_pref = self.params.backend
        self._vectorize_gc = (
            backend_for(self.modulus, prefer=self._backend_pref).name == "numpy"
        )
        self.rng = SecureRandom(seed)
        self.transport = transport
        self.channel = channel or Channel(field_bytes=(self.bits + 7) // 8)
        self.counters = ProtocolCounters()
        # Precompute parallelism mirrors the façade's rules: an explicit
        # pool wins; otherwise `workers` (explicit > REPRO_WORKERS > 1)
        # makes start_offline create a pool for the phase's duration.
        from repro.runtime.pool import resolve_workers

        self._shared_pool = pool
        self._workers = (
            pool.workers if pool is not None else resolve_workers(workers, default=1)
        )
        self._active_pool = None
        self._own_pool = None
        self._relu_circuit_cache: Circuit | None = None
        self._relu_bundles: dict[int, ReluBundle] = {}
        self.lifecycle = LIFE_NEW
        self._gen = None
        self._phase: str | None = None
        self._primed = False
        self._result = None
        self._trace_track: int | None = None
        self._phase_start_us: int | None = None
        validate_packing(self.lowered, self.params.row_size)

    # -- identity -----------------------------------------------------------

    @property
    def peer(self) -> str:
        return SERVER if self.role == CLIENT else CLIENT

    @property
    def offline_done(self) -> bool:
        return self.lifecycle in (LIFE_READY, LIFE_ONLINE, LIFE_COMPLETE)

    @property
    def active_phase(self) -> str | None:
        """The phase currently armed ("offline"/"online"), or None.

        External schedulers (the serving gateway's selector loop) use
        this to distinguish "step() returned DONE because the phase just
        completed" from "nothing is armed at all" without poking at the
        generator internals.
        """
        return self._phase

    def relu_circuit(self) -> Circuit:
        """The (shared, public) ReLU circuit topology for this protocol.

        Every ReLU layer garbles the same public topology — only the
        labels differ — so it is built once and shared, which also lets
        stored bundles rebind without re-lowering.
        """
        if self._relu_circuit_cache is None:
            mask_owner = "evaluator" if self.garbler_role == "server" else "garbler"
            spec = ReluCircuitSpec(
                bits=self.bits,
                modulus=self.modulus,
                mask_owner=mask_owner,
                truncate_bits=self.truncate_bits,
            )
            self._relu_circuit_cache = build_relu_circuit(spec)
        return self._relu_circuit_cache

    def _relu_plan(self) -> list[tuple[int, int, int, int]]:
        """(step position, linear index, mask index, width) per ReLU layer."""
        plan = []
        for pos, (kind, lin_idx) in enumerate(self.lowered.steps):
            if kind != "relu":
                continue
            mask_index = next_linear_index(self.lowered, pos)
            n = self.lowered.linears[lin_idx].n_out
            if self.lowered.linears[mask_index].n_in != n:
                raise ValueError("mask length mismatch (unsupported layer between)")
            plan.append((pos, lin_idx, mask_index, n))
        return plan

    @property
    def _last_linear_index(self) -> int:
        return self.lowered.steps[-1][1]

    # -- transport + byte accounting -----------------------------------------

    def _send(self, frame: bytes, payload=None, nbytes: int | None = None) -> None:
        """Ship a frame and charge it to this session's channel stats.

        ``payload``/``nbytes`` reproduce exactly what the monolith charged
        for the same message (analytic wire sizes, not serialized sizes),
        so a session's per-phase summary is comparable to — and tested
        byte-identical with — the pre-redesign transcripts.
        """
        self.transport.send(frame)
        self.channel.send(self.role, payload, nbytes)
        self.channel.recv(self.peer)  # stats only: drain the mirror queue

    def _note_recv(self, payload=None, nbytes: int | None = None) -> None:
        """Charge an inbound message (the peer's send) to the channel stats."""
        self.channel.send(self.peer, payload, nbytes)
        self.channel.recv(self.role)

    # -- phase control --------------------------------------------------------

    def _begin_phase(self, phase: str, gen, pool, allow_own_pool: bool) -> None:
        if self._gen is not None:
            raise RuntimeError(f"a {self._phase} phase is already in progress")
        if self.transport is None:
            raise RuntimeError("no transport attached to this session")
        active = pool if pool is not None else self._shared_pool
        if active is None and allow_own_pool and self._workers > 1:
            active = self._own_pool = make_phase_pool(
                self._backend_pref, self.params, self._workers
            )
        self._active_pool = active
        self._phase = phase
        self._gen = gen
        self._primed = False
        if TRACER.enabled:
            # Session phases interleave with other sessions on the same
            # thread (the gateway selector loop, the pipelined drain), so
            # each session gets its own virtual track for its phase spans.
            if self._trace_track is None:
                self._trace_track = TRACER.new_track(f"{self.role}-session")
            self._phase_start_us = now_us()

    def start_offline(self, pool=None) -> None:
        """Arm the offline phase (HE correlations + garbling + OT)."""
        if self._gen is not None:
            raise RuntimeError(f"a {self._phase} phase is already in progress")
        if self.lifecycle != LIFE_NEW:
            raise RuntimeError(
                f"cannot start offline from lifecycle state {self.lifecycle!r}"
                " — reset_for_request() re-arms a completed session"
            )
        self._begin_phase("offline", self._offline_gen(), pool, allow_own_pool=True)
        self.lifecycle = LIFE_OFFLINE

    def step(self, wait: bool = False) -> str:
        """Advance the active phase as far as the transport allows.

        Feeds every available inbound frame to the state machine; sends
        happen eagerly along the way. Returns :data:`WAITING` when the
        next frame has not arrived (``wait=False``) or :data:`DONE` when
        the phase completes. ``wait=True`` blocks on the transport — only
        valid for transports that can block (sockets).
        """
        if self._gen is None:
            return DONE
        try:
            if not self._primed:
                self._primed = True
                next(self._gen)
            while True:
                frame = self.transport.recv(wait=wait)
                if frame is None:
                    return WAITING
                self._gen.send(frame)
        except StopIteration:
            self._finish_phase(completed=True)
            return DONE
        except BaseException:
            # A failed phase must not look finished: drop the dead
            # generator so a later step() cannot mistake its StopIteration
            # for completion and mark a half-run offline phase done.
            self._finish_phase(completed=False)
            raise

    def _finish_phase(self, completed: bool) -> None:
        if TRACER.enabled and self._phase_start_us is not None:
            TRACER.emit_since(
                f"session.{self.role}.{self._phase}",
                self._phase_start_us,
                tid=self._trace_track,
                garbler=self.garbler_role,
                completed=completed,
            )
        self._phase_start_us = None
        self._gen = None
        self._active_pool = None
        if self._own_pool is not None:
            self._own_pool.close()
            self._own_pool = None
        if self._phase == "offline":
            # A failed offline phase must not look finished: the lifecycle
            # rolls back to NEW so the session can be re-armed (or reset).
            self.lifecycle = LIFE_READY if completed else LIFE_NEW
        else:
            self.lifecycle = LIFE_COMPLETE if completed else LIFE_READY
        self._phase = None

    def finish(self):
        """Result of the last completed phase (client online: the logits)."""
        if self._gen is not None:
            raise RuntimeError("phase still in progress — keep stepping")
        return self._result

    def run_offline(self) -> None:
        """Blocking convenience: drive the offline phase to completion."""
        self.start_offline()
        while self.step(wait=True) != DONE:
            pass  # pragma: no cover - step(wait=True) only returns on DONE

    def close(self) -> None:
        if self.transport is not None:
            self.transport.close()

    def _garble_all_layers(self, circuit: Circuit, plan):
        """Garble every ReLU layer's batch up front (both garbler roles).

        All layers' RNGs spawn first, in plan order, then garbling runs
        sequentially per layer or through one skew-aware
        ``garble_layers()`` pool plan — the draw ordering is
        transcript-critical and shared by both roles, so it lives here
        exactly once. Pooled and sequential outputs are byte-identical
        under the same rng.
        """
        layer_rngs = [self.rng.spawn() for _ in plan]
        with section("gc", "gc.garble_layers", layers=len(plan)):
            if self._active_pool is not None:
                return self._active_pool.garble_layers(
                    [(circuit, n, rng) for (_, _, _, n), rng in zip(plan, layer_rngs)],
                    vectorize=self._vectorize_gc,
                )
            return [
                Garbler(rng).garble_batch(circuit, n, vectorize=self._vectorize_gc)
                for (_, _, _, n), rng in zip(plan, layer_rngs)
            ]

    # -- offline state transplant (precompute store integration) --------------

    def load_offline_bundles(self, bundles: dict[int, ReluBundle]) -> None:
        if self._gen is not None:
            raise RuntimeError(
                f"cannot adopt offline state while a {self._phase} phase "
                "is in progress"
            )
        self._relu_bundles = bundles
        self.lifecycle = LIFE_READY

    # -- request recycling (keep-alive connections) ----------------------------

    # Attributes that belong to one *request* (offline correlations and
    # role keys), torn down by reset_for_request(). Everything else on the
    # session is connection-scoped and survives across requests.
    _REQUEST_STATE: tuple[str, ...] = ()

    def reset_for_request(self) -> None:
        """Recycle this connection-scoped session for a fresh request.

        Keeps what is amortized across a keep-alive connection — the
        transport, channel byte accounting, operation counters, lowering,
        ReLU circuit cache, RNG stream, and pool wiring — while clearing
        per-request protocol state (offline shares/keys, garbled bundles,
        the phase result) and re-arming the lifecycle at NEW so the next
        request can run or adopt a fresh offline phase.
        """
        if self._gen is not None:
            raise RuntimeError(
                f"cannot reset while a {self._phase} phase is in progress"
            )
        for name in self._REQUEST_STATE:
            self.__dict__.pop(name, None)
        self._relu_bundles = {}
        self._result = None
        self.lifecycle = LIFE_NEW


class ClientSession(ProtocolSession):
    """The client's half of the protocol: inputs, HE keys, mask vectors.

    Owns the BFV secret key, the per-layer masks ``r_i``, and the offline
    shares ``W r_i - s_i``; under Server-Garbler it additionally stores
    and later evaluates the garbled ReLUs, under Client-Garbler it
    garbles them. Lowers the network *shape-only*: layer widths and ReLU
    placement are public, and no weight matrix is ever materialized on
    this side (the ``network`` argument's weights, if any, are ignored).
    """

    role = CLIENT
    needs_weights = False
    _REQUEST_STATE = ("client_r", "client_linear_share", "_ctx", "_encoder", "_sk")

    def start_online(self, x: list[int], pool=None) -> None:
        """Arm one inference on the client input ``x``."""
        if self.lifecycle not in (LIFE_READY, LIFE_COMPLETE):
            raise RuntimeError("offline phase must run before online phase")
        if len(x) != self.lowered.input_size:
            raise ValueError("input size mismatch")
        self._begin_phase("online", self._online_gen(list(x)), pool, allow_own_pool=False)
        self.lifecycle = LIFE_ONLINE

    def run_online(self, x: list[int], pool=None) -> list[int]:
        """Blocking convenience: one inference, returns the logits."""
        self.start_online(x, pool=pool)
        while self.step(wait=True) != DONE:
            pass  # pragma: no cover - step(wait=True) only returns on DONE
        return self.finish()

    def load_offline_state(
        self,
        client_r: list[list[int]],
        client_linear_share: list[list[int]],
        bundles: dict[int, ReluBundle],
    ) -> None:
        """Adopt a stored offline phase instead of running one."""
        self.client_r = client_r
        self.client_linear_share = client_linear_share
        self.load_offline_bundles(bundles)

    # -- offline ---------------------------------------------------------------

    def _offline_gen(self):
        self.channel.set_phase("offline")
        p = self.modulus
        params = self.params
        ctx = BfvContext(params, self.rng.spawn())
        encoder = BatchEncoder(params)
        with section("he_linear", "he.keygen"):
            sk, pk = ctx.keygen()
            gk = ctx.galois_keygen(
                sk, [encoder.galois_element_for_rotation(1)], pool=self._active_pool
            )
        self._send(serialize_public_key(pk), payload=pk)
        self._send(serialize_galois_keys(gk), payload=gk)
        self._ctx, self._encoder, self._sk = ctx, encoder, sk
        # The evaluator object is used purely for its packing layout here;
        # the homomorphic matvec runs on the server.
        packer = HomomorphicLinearEvaluator(ctx, encoder, gk)

        self.client_r = [
            self.rng.field_vector(lin.n_in, p) for lin in self.lowered.linears
        ]
        self.client_linear_share = []
        # HE pass: send Enc(r_i); the server returns Enc(W r_i - s_i).
        for lin, r in zip(self.lowered.linears, self.client_r):
            with section("he_linear", "he.encrypt"):
                ct = ctx.encrypt(pk, encoder.encode(packer.pack_vector(r)))
            self.counters.he_encryptions += 1
            self._send(serialize_ciphertext(ct), payload=ct)
            frame = yield
            ct_out = deserialize_ciphertext(frame, params)
            self._note_recv(ct_out)
            with section("he_linear", "he.decrypt"):
                share = encoder.decode(ctx.decrypt(sk, ct_out))[: lin.n_out]
            self.counters.he_decryptions += 1
            self.client_linear_share.append(share)

        if self.garbler_role == "server":
            yield from self._offline_receive_garbled()
        else:
            self._offline_garble()

    def _offline_receive_garbled(self):
        """Server-Garbler: receive circuits, fetch input labels via OT."""
        circuit = self.relu_circuit()
        per = len(circuit.evaluator_inputs)
        for pos, lin_idx, mask_index, n in self._relu_plan():
            frame = yield
            wire_circuits = deserialize_circuit_batch(frame, circuit)
            self._note_recv(wire_circuits)
            if len(wire_circuits) != n:
                raise ValueError("garbled batch width does not match the layer")
            choices: list[int] = []
            for j in range(n):
                choices += int_to_bits(self.client_linear_share[lin_idx][j], self.bits)
                choices += int_to_bits(self.client_r[mask_index][j], self.bits)
            column_bytes, reply_bytes = iknp_wire_bytes(n * per)
            # The chooser's half of the extension: charged as the T-matrix
            # columns the real IKNP receiver would ship.
            self._send(serialize_bit_vector(choices), nbytes=column_bytes)
            frame = yield
            label_lists = deserialize_label_lists(frame)
            self._note_recv(nbytes=reply_bytes)
            if len(label_lists) != n:
                raise ValueError("label batch width does not match the layer")
            evaluator_labels = []
            for labels in label_lists:
                label_map = dict(zip(circuit.evaluator_inputs, labels[2:]))
                label_map[Circuit.CONST_ZERO] = labels[0]
                label_map[Circuit.CONST_ONE] = labels[1]
                evaluator_labels.append(label_map)
            self._relu_bundles[pos] = ReluBundle(
                circuits=wire_circuits,
                encodings=None,
                evaluator_labels=evaluator_labels,
                mask_index=mask_index,
            )

    def _offline_garble(self) -> None:
        """Client-Garbler: garble every layer, ship circuits + own labels."""
        circuit = self.relu_circuit()
        plan = self._relu_plan()
        batches = self._garble_all_layers(circuit, plan)
        for (pos, lin_idx, mask_index, n), batch in zip(plan, batches):
            circuits = [garbled for garbled, _ in batch]
            encodings = [encoding for _, encoding in batch]
            self.counters.gc_circuits_garbled += n
            # Decode bits ship with the circuits: the server may learn
            # x - r, so Client-Garbler lets it decode locally.
            self._send(serialize_circuit_batch(circuits), payload=circuits)
            garbler_labels = []
            for j, (garbled, encoding) in enumerate(zip(circuits, encodings)):
                share_bits = int_to_bits(self.client_linear_share[lin_idx][j], self.bits)
                mask_bits = int_to_bits(self.client_r[mask_index][j], self.bits)
                garbler_labels.append(
                    Garbler.encode_inputs(
                        encoding, garbled.circuit, share_bits + mask_bits
                    )
                )
            label_lists = [list(lbls.values()) for lbls in garbler_labels]
            self._send(serialize_label_lists(label_lists), payload=label_lists)
            self._relu_bundles[pos] = ReluBundle(
                circuits=None,
                encodings=encodings,
                evaluator_labels=None,
                mask_index=mask_index,
            )

    # -- online ----------------------------------------------------------------

    def _online_gen(self, x: list[int]):
        self.channel.set_phase("online")
        p = self.modulus
        masked = mod_sub_vec(x, self.client_r[0], p, prefer=self._backend_pref)
        self._send(serialize_field_vector(masked, p), payload=masked)

        circuit = self.relu_circuit()
        evaluator = Evaluator()
        if self.garbler_role == "server":
            # Evaluate each layer's circuits on the server's share labels.
            for pos, _, _, n in self._relu_plan():
                bundle = self._relu_bundles[pos]
                frame = yield
                all_labels = deserialize_label_lists(frame)
                self._note_recv(all_labels)
                labels_batch = []
                for j, garbler_labels in enumerate(all_labels):
                    labels = dict(bundle.evaluator_labels[j])
                    labels.update(zip(circuit.garbler_inputs, garbler_labels))
                    labels_batch.append(labels)
                with section("gc", "gc.evaluate_batch", width=n):
                    output_label_batch = evaluator.evaluate_batch(
                        bundle.circuits, labels_batch, vectorize=self._vectorize_gc
                    )
                self.counters.gc_circuits_evaluated += len(labels_batch)
                self._send(
                    serialize_label_lists(output_label_batch),
                    payload=output_label_batch,
                )
        else:
            # Serve the server's online label OT from this side's encodings.
            per = len(circuit.evaluator_inputs)
            for pos, _, _, n in self._relu_plan():
                bundle = self._relu_bundles[pos]
                frame = yield
                choices = deserialize_bit_vector(frame)
                if len(choices) != n * per:
                    raise ValueError("OT choice count does not match the layer")
                column_bytes, _ = iknp_wire_bytes(len(choices))
                self._note_recv(nbytes=column_bytes)
                pairs = []
                for encoding in bundle.encodings:
                    for wire in circuit.evaluator_inputs:
                        pairs.append(
                            (encoding.label_for(wire, 0), encoding.label_for(wire, 1))
                        )
                with section("ot", "ot.iknp_transfer", pairs=len(pairs)):
                    received, transcript = iknp_transfer(
                        pairs, choices, self.rng.spawn(), pool=self._active_pool
                    )
                self.counters.ots_performed += len(pairs)
                self._send(
                    serialize_labels(received),
                    nbytes=transcript.base_ot_bytes + transcript.ciphertext_bytes,
                )

        frame = yield
        final_server_share = deserialize_field_vector(frame)
        self._note_recv(final_server_share)
        final_client_share = self.client_linear_share[self._last_linear_index]
        self._result = mod_add_vec(
            final_server_share, final_client_share, p, prefer=self._backend_pref
        )


class ServerSession(ProtocolSession):
    """The server's half of the protocol: weights, HE evaluation, shares.

    Owns the model weights and the per-layer output shares ``s_i``;
    evaluates the homomorphic matvecs offline and the masked linear
    layers online. Under Server-Garbler it garbles the ReLUs; under
    Client-Garbler it stores and evaluates them (fetching its input
    labels by online OT), which is exactly the storage/latency trade the
    paper's §5.1 proposes.
    """

    role = SERVER
    _REQUEST_STATE = ("server_s",)

    def start_online(self, pool=None) -> None:
        """Arm the serving side of one inference."""
        if self.lifecycle not in (LIFE_READY, LIFE_COMPLETE):
            raise RuntimeError("offline phase must run before online phase")
        self._begin_phase("online", self._online_gen(), pool, allow_own_pool=False)
        self.lifecycle = LIFE_ONLINE

    def run_online(self, pool=None) -> None:
        """Blocking convenience: serve one inference to completion."""
        self.start_online(pool=pool)
        while self.step(wait=True) != DONE:
            pass  # pragma: no cover - step(wait=True) only returns on DONE
        return self.finish()

    def load_offline_state(
        self, server_s: list[list[int]], bundles: dict[int, ReluBundle]
    ) -> None:
        """Adopt a stored offline phase instead of running one."""
        self.server_s = server_s
        self.load_offline_bundles(bundles)

    # -- offline ---------------------------------------------------------------

    def _offline_gen(self):
        self.channel.set_phase("offline")
        p = self.modulus
        params = self.params
        ctx = BfvContext(params)
        encoder = BatchEncoder(params)
        frame = yield
        pk = deserialize_public_key(frame, params)
        self._note_recv(pk)
        frame = yield
        gk = deserialize_galois_keys(frame, params)
        self._note_recv(gk)
        evaluator = HomomorphicLinearEvaluator(ctx, encoder, gk)

        self.server_s = [
            self.rng.field_vector(lin.n_out, p) for lin in self.lowered.linears
        ]
        row = params.row_size
        # HE pass: homomorphic W r_i - s_i on each received Enc(r_i).
        for lin, s in zip(self.lowered.linears, self.server_s):
            frame = yield
            ct = deserialize_ciphertext(frame, params)
            self._note_recv(ct)
            with section("he_linear", "he.matvec", n_out=lin.n_out):
                ct_y = evaluator.matvec(ct, lin.matrix)
                s_row = list(s) + [0] * (row - lin.n_out)
                ct_out = ctx.sub_plain(ct_y, encoder.encode(s_row + s_row))
            self._send(serialize_ciphertext(ct_out), payload=ct_out)
        self.counters.he_rotations = evaluator.rotations_performed
        self.counters.he_plain_mults = evaluator.plain_mults_performed

        if self.garbler_role == "server":
            yield from self._offline_garble()
        else:
            yield from self._offline_receive_garbled()

    def _offline_garble(self):
        """Server-Garbler: garble every layer, serve the client's label OT."""
        circuit = self.relu_circuit()
        plan = self._relu_plan()
        per = len(circuit.evaluator_inputs)
        batches = self._garble_all_layers(circuit, plan)
        for (pos, _, mask_index, n), batch in zip(plan, batches):
            circuits = [garbled for garbled, _ in batch]
            encodings = [encoding for _, encoding in batch]
            self.counters.gc_circuits_garbled += n
            # Decode bits stripped: the evaluating client must not learn
            # the cleartext ReLU outputs.
            wire_circuits = [
                GarbledCircuit(c.circuit, c.tables, []) for c in circuits
            ]
            self._send(serialize_circuit_batch(wire_circuits), payload=wire_circuits)
            frame = yield
            choices = deserialize_bit_vector(frame)
            if len(choices) != n * per:
                raise ValueError("OT choice count does not match the layer")
            column_bytes, _ = iknp_wire_bytes(len(choices))
            self._note_recv(nbytes=column_bytes)
            pairs = []
            for encoding in encodings:
                for wire in circuit.evaluator_inputs:
                    pairs.append(
                        (encoding.label_for(wire, 0), encoding.label_for(wire, 1))
                    )
            with section("ot", "ot.iknp_transfer", pairs=len(pairs)):
                received, transcript = iknp_transfer(
                    pairs, choices, self.rng.spawn(), pool=self._active_pool
                )
            self.counters.ots_performed += len(pairs)
            # Chosen labels plus each instance's constant-wire labels (the
            # monolith handed constants over directly; on the wire they
            # ride the same message the masked OT pairs are charged as).
            label_lists = [
                [
                    encodings[j].label_for(Circuit.CONST_ZERO, 0),
                    encodings[j].label_for(Circuit.CONST_ONE, 1),
                ]
                + received[j * per : (j + 1) * per]
                for j in range(n)
            ]
            self._send(
                serialize_label_lists(label_lists),
                nbytes=transcript.base_ot_bytes + transcript.ciphertext_bytes,
            )
            self._relu_bundles[pos] = ReluBundle(
                circuits=None,
                encodings=encodings,
                evaluator_labels=None,
                mask_index=mask_index,
            )

    def _offline_receive_garbled(self):
        """Client-Garbler: store circuits (decode bits intact) + labels."""
        circuit = self.relu_circuit()
        garbler_wire_order = [
            Circuit.CONST_ZERO,
            Circuit.CONST_ONE,
        ] + circuit.garbler_inputs
        for pos, _, mask_index, n in self._relu_plan():
            frame = yield
            circuits = deserialize_circuit_batch(frame, circuit)
            self._note_recv(circuits)
            frame = yield
            label_lists = deserialize_label_lists(frame)
            self._note_recv(label_lists)
            if len(circuits) != n or len(label_lists) != n:
                raise ValueError("garbled batch width does not match the layer")
            # Rebuild the garbler's label dicts in their insertion order
            # ([consts, garbler inputs]) — the online phase relies on it.
            evaluator_labels = [
                dict(zip(garbler_wire_order, labels)) for labels in label_lists
            ]
            self._relu_bundles[pos] = ReluBundle(
                circuits=circuits,
                encodings=None,
                evaluator_labels=evaluator_labels,
                mask_index=mask_index,
            )

    # -- online ----------------------------------------------------------------

    def _online_gen(self):
        self.channel.set_phase("online")
        p = self.modulus
        frame = yield
        server_vec = deserialize_field_vector(frame)
        self._note_recv(server_vec)
        if len(server_vec) != self.lowered.input_size:
            raise ValueError("masked input size mismatch")

        circuit = self.relu_circuit()
        evaluator = Evaluator()
        for pos, (kind, lin_idx) in enumerate(self.lowered.steps):
            if kind == "linear":
                lin = self.lowered.linears[lin_idx]
                with section("he_linear", "linear.matvec_mod", n_out=lin.n_out):
                    server_vec = mod_add_vec(
                        matvec_mod(
                            lin.matrix, server_vec, p, prefer=self._backend_pref
                        ),
                        self.server_s[lin_idx],
                        p,
                        prefer=self._backend_pref,
                    )
                continue
            bundle = self._relu_bundles[pos]
            if self.garbler_role == "server":
                # Ship the labels of this side's share; the client
                # evaluates and returns output labels; decode here.
                with section("gc", "gc.encode_labels", width=len(server_vec)):
                    all_labels = []
                    for j, value in enumerate(server_vec):
                        encoding = bundle.encodings[j]
                        bits = int_to_bits(value, self.bits)
                        all_labels.append(
                            [
                                encoding.label_for(w, b)
                                for w, b in zip(circuit.garbler_inputs, bits)
                            ]
                        )
                self._send(serialize_label_lists(all_labels), payload=all_labels)
                frame = yield
                output_label_batch = deserialize_label_lists(frame)
                self._note_recv(output_label_batch)
                with section("gc", "gc.decode_outputs",
                             width=len(output_label_batch)):
                    out = []
                    for j, out_labels in enumerate(output_label_batch):
                        bits = Garbler.decode_output_labels(
                            bundle.encodings[j], circuit, out_labels
                        )
                        out.append(words_to_int(bits))
                    server_vec = out
            else:
                # Fetch labels for this side's share via online OT, then
                # evaluate and decode locally (decode bits shipped offline).
                choices: list[int] = []
                for value in server_vec:
                    choices += int_to_bits(value, self.bits)
                column_bytes, reply_bytes = iknp_wire_bytes(len(choices))
                self._send(serialize_bit_vector(choices), nbytes=column_bytes)
                frame = yield
                received = deserialize_labels(frame)
                self._note_recv(nbytes=reply_bytes)
                per = self.bits
                labels_batch = []
                for j in range(len(server_vec)):
                    labels = dict(bundle.evaluator_labels[j])
                    chunk = received[j * per : (j + 1) * per]
                    labels.update(zip(circuit.evaluator_inputs, chunk))
                    labels_batch.append(labels)
                with section("gc", "gc.evaluate_batch", width=len(labels_batch)):
                    output_label_batch = evaluator.evaluate_batch(
                        bundle.circuits, labels_batch, vectorize=self._vectorize_gc
                    )
                    self.counters.gc_circuits_evaluated += len(labels_batch)
                    server_vec = [
                        words_to_int(evaluator.decode(garbled, out_labels))
                        for garbled, out_labels in zip(
                            bundle.circuits, output_label_batch
                        )
                    ]

        # Final reconstruction: ship this side's output share.
        self._send(serialize_field_vector(server_vec, p), payload=server_vec)
        self._result = None
