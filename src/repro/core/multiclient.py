"""Multi-client private-inference serving (§5.2's closing discussion).

The paper observes that RLP also pays off when *multiple clients* share
one server: aggregate client storage scales with the number of clients
(9 clients x 16 GB ≈ the 140 GB single-client setting), so the server can
run one single-core pre-compute per client concurrently — but each client
still buffers only its own pre-computes, so per-client latency resembles
the small-storage single-client case.

This module simulates N independent clients with private storage and
request streams contending for one server's cores and one downlink/uplink
per client (clients have independent wireless links; the server's compute
is the shared resource).

The analytical answer is no longer the only one: :meth:`MultiClientSimulator.
run_functional` executes the same deployment for real through
:class:`repro.runtime.serving.ServingLoop` — per-client precomputes minted
on one shared :class:`~repro.runtime.PrecomputePool`, admitted into
per-client :class:`~repro.runtime.PrecomputeStore` namespaces under a
global byte budget, and drained by interleaved online requests — returning
measured wall-clock/queue-depth/buffer-occupancy results this simulator
can be validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.system import OfflineParallelism, SystemConfig, pipeline_times
from repro.profiling.model_costs import Protocol
from repro.simulation.engine import Container, Environment, Resource, Store
from repro.workload.generators import InferenceRequest, PoissonWorkload


@dataclass(frozen=True)
class MultiClientConfig:
    """N identical clients sharing one server."""

    base: SystemConfig
    num_clients: int = 9

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError("need at least one client")

    @property
    def aggregate_storage_bytes(self) -> float:
        return self.num_clients * self.base.client_storage_bytes


@dataclass
class MultiClientResult:
    per_client: list[list[InferenceRequest]]

    @property
    def all_completed(self) -> list[InferenceRequest]:
        return [
            r
            for client in self.per_client
            for r in client
            if r.completion_time is not None
        ]

    @property
    def mean_latency(self) -> float:
        done = self.all_completed
        return sum(r.latency for r in done) / len(done) if done else 0.0

    def client_mean_latency(self, index: int) -> float:
        done = [r for r in self.per_client[index] if r.completion_time is not None]
        return sum(r.latency for r in done) / len(done) if done else 0.0


class MultiClientSimulator:
    """Simulates N clients with private links/storage and a shared server."""

    def __init__(self, config: MultiClientConfig):
        self.config = config
        self.times = pipeline_times(config.base)
        self.link = config.base.link()

    def _use(self, env, resource: Resource, seconds: float):
        yield resource.request()
        yield env.timeout(seconds)
        resource.release()

    def _pipeline(self, env, server_he, client_rig):
        t = self.times
        yield from self._use(env, client_rig["client_cpu"], t.client_he)
        yield from self._use(env, server_he, t.server_he)
        # Client-Garbler: garbling runs on the client's own device.
        garble_rig = (
            client_rig["client_cpu"]
            if self.config.base.protocol is Protocol.CLIENT_GARBLER
            else server_he
        )
        yield from self._use(env, garble_rig, t.garble)
        yield from self._use(
            env, client_rig["up"], self.link.upload_seconds(t.offline_up_bytes)
        )
        yield from self._use(
            env, client_rig["down"], self.link.download_seconds(t.offline_down_bytes)
        )

    def _worker(self, env, server_he, client_rig):
        footprint = self.config.base.precompute_footprint
        while True:
            yield client_rig["storage"].get(footprint)
            yield env.process(self._pipeline(env, server_he, client_rig))
            client_rig["buffer"].put(object())

    def _serve(self, env, server_he, service, client_rig, request, buffered):
        base = self.config.base
        yield service.request()
        request.service_start = env.now
        start = env.now
        reserved = False
        if buffered:
            yield client_rig["buffer"].get()
            request.used_precompute = request.service_start == env.now
            reserved = True
        else:
            yield env.process(self._pipeline(env, server_he, client_rig))
        request.offline_seconds = env.now - start

        online_start = env.now
        volumes = base.profile.comm(base.protocol)
        yield from self._use(
            env, client_rig["up"], self.link.upload_seconds(volumes.online_up)
        )
        yield from self._use(
            env, client_rig["down"], self.link.download_seconds(volumes.online_down)
        )
        evaluator = (
            base.client if base.protocol is Protocol.SERVER_GARBLER else base.server
        )
        eval_seconds = base.profile.gc_eval_seconds(evaluator)
        if base.protocol is Protocol.CLIENT_GARBLER:
            yield from self._use(env, server_he, eval_seconds)
        else:
            yield from self._use(env, client_rig["client_cpu"], eval_seconds)
        yield env.timeout(base.profile.ss_online_seconds(base.server))
        request.online_seconds = env.now - online_start
        request.completion_time = env.now
        service.release()
        if reserved:
            yield client_rig["storage"].put(base.precompute_footprint)

    def run(
        self, mean_interarrival: float, horizon: float, seed: int = 0
    ) -> MultiClientResult:
        env = Environment()
        base = self.config.base
        server_he = Resource(env, base.server.cores)
        buffered = base.buffer_capacity >= 1
        per_client: list[list[InferenceRequest]] = []
        for c in range(self.config.num_clients):
            prefill = base.buffer_capacity if buffered else 0
            rig = {
                "client_cpu": Resource(env, 1),
                "up": Resource(env, 1),
                "down": Resource(env, 1),
                "storage": Container(
                    env,
                    max(base.client_storage_bytes, 1.0),
                    init=base.client_storage_bytes
                    - prefill * base.precompute_footprint,
                ),
                "buffer": Store(env),
            }
            for _ in range(prefill):
                rig["buffer"].put(object())
            service = Resource(env, 1)  # FIFO per client
            requests: list[InferenceRequest] = []
            per_client.append(requests)
            workload = PoissonWorkload(mean_interarrival, horizon, seed=seed * 101 + c)
            env.process(
                self._arrivals(env, server_he, service, rig, workload, requests, buffered)
            )
            if buffered:
                env.process(self._worker(env, server_he, rig))
        env.run(until=horizon)
        env.run(until=horizon + 1000 * 24 * 3600)
        return MultiClientResult(per_client=per_client)

    def run_functional(
        self,
        network,
        store,
        requests_per_client: int = 1,
        workers: int | None = None,
        prefill: int = 1,
        seed: int = 0,
        model_id: str = "multiclient",
    ):
        """Measured counterpart of :meth:`run`: really serve the clients.

        Builds a :class:`~repro.runtime.serving.ServingLoop` shaped like
        this deployment — garbler role from the config's protocol, BFV
        parameters from ``functional_bfv_params()``, pool size from
        ``precompute_workers()`` unless overridden — and serves
        ``requests_per_client`` interleaved requests per client from the
        given :class:`~repro.runtime.PrecomputeStore`. Returns the
        :class:`~repro.runtime.serving.ServingReport` of measured
        wall-clock, queue-depth, and buffer-occupancy results that the
        analytical :meth:`run` answer can be validated against.
        """
        from repro.runtime.pool import PrecomputePool
        from repro.runtime.serving import ServingLoop

        base = self.config.base
        garbler = (
            "client" if base.protocol is Protocol.CLIENT_GARBLER else "server"
        )
        resolved = base.precompute_workers() if workers is None else workers
        with PrecomputePool(workers=resolved) as pool:
            loop = ServingLoop(
                network,
                base.functional_bfv_params(),
                self.config.num_clients,
                store,
                pool=pool,
                garbler=garbler,
                prefill=prefill,
                base_seed=seed,
                model_id=model_id,
            )
            return loop.run(requests_per_client)

    def _arrivals(self, env, server_he, service, rig, workload, requests, buffered):
        previous = 0.0
        for index, at in enumerate(workload.arrival_times()):
            yield env.timeout(at - previous)
            previous = at
            request = InferenceRequest(index=index, arrival_time=env.now)
            requests.append(request)
            env.process(
                self._serve(env, server_he, service, rig, request, buffered)
            )
