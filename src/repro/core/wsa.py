"""Wireless slot allocation (WSA): provisioning upload vs download bandwidth.

Communication in hybrid PI is wildly asymmetric — Server-Garbler downloads
tens of GB of garbled circuits while uploading little; Client-Garbler is
the mirror image. With serialized transfers, total communication time at
upload fraction f is T(f) = 8U/(fB) + 8D/((1-f)B), minimized at
f* = sqrt(U) / (sqrt(U) + sqrt(D)). The paper reports up to 35% latency
reduction over the default even split (§5.3, Figure 11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.network.bandwidth import TddLink
from repro.profiling.model_costs import CommVolumes


def comm_seconds(volumes: CommVolumes, link: TddLink) -> float:
    """Total (offline + online) communication seconds over a link."""
    return link.transfer_seconds(volumes.upload, volumes.download)


def optimal_upload_fraction(volumes: CommVolumes) -> float:
    """The closed-form optimum of the serialized transfer-time model."""
    up = math.sqrt(volumes.upload)
    down = math.sqrt(volumes.download)
    if up + down == 0:
        return 0.5
    return up / (up + down)


@dataclass(frozen=True)
class WsaSweepPoint:
    upload_fraction: float
    latency_seconds: float


def sweep_allocations(
    volumes: CommVolumes,
    total_bps: float,
    fractions: tuple[float, ...] = tuple(f / 10 for f in range(1, 10)),
) -> list[WsaSweepPoint]:
    """Latency at each candidate slot allocation (Figure 11's x-axis)."""
    return [
        WsaSweepPoint(f, comm_seconds(volumes, TddLink(total_bps, f)))
        for f in fractions
    ]


def optimize(volumes: CommVolumes, total_bps: float) -> tuple[TddLink, float]:
    """The optimal link configuration and its communication latency."""
    f_star = optimal_upload_fraction(volumes)
    link = TddLink(total_bps, f_star)
    return link, comm_seconds(volumes, link)


def improvement_over_even_split(volumes: CommVolumes, total_bps: float) -> float:
    """Fractional latency reduction of optimal WSA vs the 50/50 default."""
    even = comm_seconds(volumes, TddLink(total_bps, 0.5))
    _, best = optimize(volumes, total_bps)
    return 1.0 - best / even
