"""The functional two-party hybrid private-inference protocol (DELPHI).

Executes real cryptography end to end on small networks: BFV homomorphic
encryption generates the linear-layer share correlations offline, garbled
circuits evaluate ReLUs, IKNP OT extension delivers wire labels, and both
parties exchange every message through a byte-counted channel. The result
is bit-exact against the plaintext field evaluation of the same network.

Two garbling roles are supported (§2.2 and §5.1 of the paper):

* ``ServerGarbler`` — the baseline: the server garbles ReLUs offline and
  the client stores and later evaluates them. The client's input labels
  travel by offline OT; the server's share labels are sent online.
* ``ClientGarbler`` — the proposed optimization: the client garbles and
  the *server* stores and evaluates, so the heavy storage moves server-side
  and online GC evaluation runs on the fast server; the server's input
  labels must now be fetched by *online* OT.

The protocol invariant through the network is DELPHI's: before linear
layer i the server holds x_i - r_i and the client holds r_i; after it the
server holds W(x_i - r_i) + s_i and the client's offline share is
W r_i - s_i, so their sum is the true activation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend import ComputeBackend, backend_for
from repro.crypto.modmath import matvec_mod, mod_add_vec, mod_sub_vec
from repro.crypto.rng import SecureRandom
from repro.gc.circuit import Circuit, int_to_bits, words_to_int
from repro.gc.evaluate import Evaluator
from repro.gc.garble import GarbledCircuit, Garbler, InputEncoding
from repro.gc.relu import ReluCircuitSpec, build_relu_circuit
from repro.he.bfv import BfvContext
from repro.he.encoder import BatchEncoder
from repro.he.linear import HomomorphicLinearEvaluator
from repro.he.params import BfvParams, toy_params
from repro.network.channel import CLIENT, SERVER, Channel
from repro.nn.layers import Conv2d, Flatten, Linear, ReLU
from repro.nn.network import Network
from repro.ot.extension import iknp_transfer


@dataclass
class LoweredLinear:
    """A linear layer lowered to an explicit field matrix.

    ``matrix`` is backend-native: a ``uint64`` ndarray under the numpy
    backend (so HE diagonal extraction and the online matvec are
    vectorized gathers/matmuls) or a list of row lists under python.
    """

    name: str
    matrix: "np.ndarray | list[list[int]]"

    @property
    def n_in(self) -> int:
        return len(self.matrix[0])

    @property
    def n_out(self) -> int:
        return len(self.matrix)


@dataclass
class LoweredNetwork:
    """Alternating linear/ReLU program extracted from a Network.

    ``steps`` is a list of ("linear", index) / ("relu", index) tags;
    shape-only layers (Flatten) vanish during lowering.
    """

    linears: list[LoweredLinear]
    steps: list[tuple[str, int]]
    modulus: int
    input_size: int
    output_size: int


def lower_network(
    network: Network, modulus: int, backend: str | None = None
) -> LoweredNetwork:
    """Lower a stride-1 conv/FC/ReLU/Flatten network to field matrices.

    Matrices are stored in the representation native to the compute
    backend resolved for ``modulus`` (see :class:`LoweredLinear`).
    """
    from repro.nn.shapes import TensorShape

    be = backend_for(modulus, prefer=backend)
    linears: list[LoweredLinear] = []
    steps: list[tuple[str, int]] = []
    shape = network.input_shape
    for layer in network.layers:
        if isinstance(layer, Conv2d):
            if layer.stride != 1:
                raise ValueError("functional runner supports stride-1 convs only")
            matrix = HomomorphicLinearEvaluator.conv_as_matrix(
                np.asarray(layer.weights), (shape.channels, shape.height, shape.width),
                layer.padding, modulus,
            )
            steps.append(("linear", len(linears)))
            linears.append(LoweredLinear(layer.name, be.asmatrix(matrix, modulus)))
        elif isinstance(layer, Linear):
            matrix = [
                [int(w) % modulus for w in row] for row in np.asarray(layer.weights)
            ]
            steps.append(("linear", len(linears)))
            linears.append(LoweredLinear(layer.name, be.asmatrix(matrix, modulus)))
        elif isinstance(layer, ReLU):
            if not steps or steps[-1][0] != "linear":
                raise ValueError("ReLU must follow a linear layer")
            steps.append(("relu", steps[-1][1]))
        elif isinstance(layer, Flatten):
            pass  # pure reshape; the flattened ordering matches lowering
        else:
            raise ValueError(
                f"functional runner cannot lower layer {type(layer).__name__}"
            )
        shape = layer.output_shape(shape)
    if steps[-1][0] != "linear":
        raise ValueError("network must end with a linear layer")
    return LoweredNetwork(
        linears=linears,
        steps=steps,
        modulus=modulus,
        input_size=network.input_shape.elements,
        output_size=network.output_shape.elements,
    )


@dataclass
class ReluBundle:
    """Everything stored for one garbled ReLU layer."""

    circuits: list[GarbledCircuit]
    encodings: list[InputEncoding] | None  # garbler side only
    evaluator_labels: list[dict[int, bytes]] | None  # evaluator side only
    mask_index: int  # which linear layer's r masks this ReLU's output


@dataclass
class ProtocolCounters:
    """Operation counters accumulated during a run."""

    he_encryptions: int = 0
    he_decryptions: int = 0
    he_rotations: int = 0
    he_plain_mults: int = 0
    gc_circuits_garbled: int = 0
    gc_circuits_evaluated: int = 0
    ots_performed: int = 0


class HybridProtocol:
    """Runs one private inference between an in-process client and server.

    The ``garbler`` argument selects Server-Garbler ("server") or
    Client-Garbler ("client"). Weights live on the server; the input vector
    is the client's secret.
    """

    def __init__(
        self,
        network: Network,
        params: BfvParams | None = None,
        garbler: str = "server",
        seed: int | None = None,
        truncate_bits: int = 0,
        backend: str | None = None,
        representation: str | None = None,
        workers: int | None = None,
        pool=None,
    ):
        if garbler not in ("server", "client"):
            raise ValueError("garbler must be 'server' or 'client'")
        self.params = params or toy_params(n=256)
        if backend is not None or representation is not None:
            from dataclasses import replace

            overrides = {}
            if backend is not None:
                overrides["backend"] = backend
            if representation is not None:
                # 'bigint' forces the one-vector oracle ring; 'rns' forces
                # CRT residues (params must carry a chain); 'auto' re-opens
                # the per-params heuristic.
                overrides["representation"] = representation
            self.params = replace(self.params, **overrides)
        self.garbler_role = garbler
        self.modulus = self.params.t
        self.bits = self.modulus.bit_length()
        self.truncate_bits = truncate_bits
        self.lowered = lower_network(
            network, self.modulus, backend=self.params.backend
        )
        # Resolved once: share arithmetic and GC batching follow the same
        # per-protocol preference the HE layer uses, not just the global.
        self._backend_pref = self.params.backend
        self._vectorize_gc = (
            backend_for(self.modulus, prefer=self._backend_pref).name == "numpy"
        )
        self.rng = SecureRandom(seed)
        self.channel = Channel(field_bytes=(self.bits + 7) // 8)
        self.counters = ProtocolCounters()
        self._offline_done = False
        # Precompute parallelism: an explicit pool wins; otherwise `workers`
        # (explicit > REPRO_WORKERS > 1) makes run_offline create its own
        # PrecomputePool for the duration of the offline phase. A
        # constructor-provided pool also serves run_online's label OT
        # (Client-Garbler); `workers` alone stays offline-only, so the
        # short-lived online phase never pays a pool's fork cost unasked.
        # Pooled and sequential phases are transcript-identical under the
        # same seed (all randomness stays on this side of the pool).
        from repro.runtime.pool import resolve_workers

        self._shared_pool = pool
        self._workers = (
            pool.workers if pool is not None else resolve_workers(workers, default=1)
        )
        self._active_pool = None
        self._relu_circuit_cache: Circuit | None = None
        self._validate_packing()

    def _validate_packing(self) -> None:
        row = self.params.row_size
        for lin in self.lowered.linears:
            if row % lin.n_in != 0:
                raise ValueError(
                    f"{lin.name}: width {lin.n_in} must divide row size {row}"
                )
            if lin.n_out > row:
                raise ValueError(f"{lin.name}: height {lin.n_out} exceeds row size")

    # -- offline phase ---------------------------------------------------------

    def run_offline(self) -> None:
        """Execute the full offline phase (HE correlations + garbling + OT).

        With ``workers > 1`` (or an explicit ``pool``), garbling, the OT
        extension stages, and the Galois key products run on a
        :class:`~repro.runtime.pool.PrecomputePool`; every transcript
        byte matches the sequential run under the same seed.
        """
        own_pool = None
        self._active_pool = self._shared_pool
        if self._active_pool is None and self._workers > 1:
            from repro.backend import active_backend_name
            from repro.runtime.pool import PrecomputePool

            # Forward the *effective* selections: a worker's initializer
            # re-reads its environment (dropping the parent's programmatic
            # set_backend / a params-level override), so an explicit
            # backend or representation choice must travel with the pool.
            backend = self._backend_pref
            if not backend or backend == "auto":
                backend = active_backend_name()
            own_pool = PrecomputePool(
                workers=self._workers,
                backend=backend,
                representation=self.params.resolve_representation(),
            )
            self._active_pool = own_pool
        try:
            self._run_offline_phase()
        finally:
            self._active_pool = None
            if own_pool is not None:
                own_pool.close()

    def _run_offline_phase(self) -> None:
        self.channel.set_phase("offline")
        ctx = BfvContext(self.params, self.rng.spawn())
        encoder = BatchEncoder(self.params)
        sk, pk = ctx.keygen()
        gk = ctx.galois_keygen(
            sk, [encoder.galois_element_for_rotation(1)], pool=self._active_pool
        )
        self.channel.send(CLIENT, pk)
        self.channel.send(CLIENT, gk)
        self.channel.recv(SERVER)
        self.channel.recv(SERVER)
        self._ctx, self._encoder, self._sk = ctx, encoder, sk
        evaluator = HomomorphicLinearEvaluator(ctx, encoder, gk)

        p = self.modulus
        # Client randomness r_i per linear layer input; server randomness s_i
        # per linear layer output.
        self.client_r = [
            self.rng.field_vector(lin.n_in, p) for lin in self.lowered.linears
        ]
        self.server_s = [
            self.rng.field_vector(lin.n_out, p) for lin in self.lowered.linears
        ]
        # HE pass: client sends Enc(r_i); server returns Enc(W r_i - s_i).
        self.client_linear_share = []
        for lin, r, s in zip(self.lowered.linears, self.client_r, self.server_s):
            packed = evaluator.pack_vector(r)
            ct = ctx.encrypt(pk, encoder.encode(packed))
            self.counters.he_encryptions += 1
            self.channel.send(CLIENT, ct)
            ct = self.channel.recv(SERVER)
            ct_y = evaluator.matvec(ct, lin.matrix)
            row = self.params.row_size
            s_row = list(s) + [0] * (row - lin.n_out)
            ct_out = ctx.sub_plain(ct_y, encoder.encode(s_row + s_row))
            self.channel.send(SERVER, ct_out)
            ct_out = self.channel.recv(CLIENT)
            share = encoder.decode(ctx.decrypt(sk, ct_out))[: lin.n_out]
            self.counters.he_decryptions += 1
            self.client_linear_share.append(share)
        self.counters.he_rotations = evaluator.rotations_performed
        self.counters.he_plain_mults = evaluator.plain_mults_performed

        # GC pass: garble one circuit per ReLU activation. All layers'
        # batches are garbled up front — sequentially per layer, or, with
        # a pool, through one skew-aware garble_layers() plan so a wide
        # layer's shards interleave with narrow layers' instead of
        # straggling — then each layer's channel exchange runs in order.
        # Each layer draws from its own spawned RNG, so the bytes are
        # identical between the two branches.
        self._relu_bundles: dict[int, ReluBundle] = {}
        relu_steps = [
            (pos, lin_idx)
            for pos, (kind, lin_idx) in enumerate(self.lowered.steps)
            if kind == "relu"
        ]
        circuit = self._relu_circuit()
        layer_plan = []
        for pos, lin_idx in relu_steps:
            mask_index = self._next_linear_index(pos)
            n = self.lowered.linears[lin_idx].n_out
            if len(self.client_r[mask_index]) != n:
                raise ValueError("mask length mismatch (unsupported layer between)")
            layer_plan.append((pos, lin_idx, mask_index, n, self.rng.spawn()))
        if self._active_pool is not None:
            batches = self._active_pool.garble_layers(
                [(circuit, n, rng) for _, _, _, n, rng in layer_plan],
                vectorize=self._vectorize_gc,
            )
        else:
            batches = [
                Garbler(rng).garble_batch(circuit, n, vectorize=self._vectorize_gc)
                for _, _, _, n, rng in layer_plan
            ]
        for (pos, lin_idx, mask_index, n, _), batch in zip(layer_plan, batches):
            self._offline_relu_layer(pos, lin_idx, mask_index, batch)
        self._offline_done = True

    def _next_linear_index(self, relu_pos: int) -> int:
        for kind, idx in self.lowered.steps[relu_pos + 1 :]:
            if kind == "linear":
                return idx
        raise ValueError("ReLU with no following linear layer")

    def _relu_circuit(self) -> Circuit:
        """The (shared) ReLU circuit topology for this protocol's layers.

        Every ReLU layer garbles the same public topology — only the
        labels differ — so it is built once and shared, which also lets
        :meth:`import_offline` rebind stored bundles without re-lowering.
        """
        if self._relu_circuit_cache is None:
            mask_owner = "evaluator" if self.garbler_role == "server" else "garbler"
            spec = ReluCircuitSpec(
                bits=self.bits,
                modulus=self.modulus,
                mask_owner=mask_owner,
                truncate_bits=self.truncate_bits,
            )
            self._relu_circuit_cache = build_relu_circuit(spec)
        return self._relu_circuit_cache

    def _offline_relu_layer(
        self, pos: int, lin_idx: int, mask_index: int, garbled_batch
    ) -> None:
        """Channel exchange for one ReLU layer's pre-garbled batch."""
        n = self.lowered.linears[lin_idx].n_out
        circuit = self._relu_circuit()
        circuits = [garbled for garbled, _ in garbled_batch]
        encodings = [encoding for _, encoding in garbled_batch]
        self.counters.gc_circuits_garbled += n

        if self.garbler_role == "server":
            # Server -> client: circuits with decode bits stripped (the
            # evaluator must not learn outputs), then client label OT.
            wire_circuits = [
                GarbledCircuit(c.circuit, c.tables, []) for c in circuits
            ]
            self.channel.send(SERVER, wire_circuits)
            self.channel.recv(CLIENT)
            evaluator_labels = self._client_labels_via_ot(
                circuit, circuits, encodings, lin_idx, mask_index, sender=SERVER
            )
            self._relu_bundles[pos] = ReluBundle(
                circuits=wire_circuits,
                encodings=encodings,
                evaluator_labels=evaluator_labels,
                mask_index=mask_index,
            )
        else:
            # Client garbles: ships circuits (with decode bits — the server
            # may learn x - r) plus the labels of its own inputs.
            self.channel.send(CLIENT, circuits)
            self.channel.recv(SERVER)
            garbler_labels = []
            for j, (garbled, encoding) in enumerate(zip(circuits, encodings)):
                share_bits = int_to_bits(self.client_linear_share[lin_idx][j], self.bits)
                mask_bits = int_to_bits(self.client_r[mask_index][j], self.bits)
                labels = Garbler.encode_inputs(
                    encoding, garbled.circuit, share_bits + mask_bits
                )
                garbler_labels.append(labels)
            self.channel.send(
                CLIENT, [list(lbls.values()) for lbls in garbler_labels]
            )
            self.channel.recv(SERVER)
            self._relu_bundles[pos] = ReluBundle(
                circuits=circuits,
                encodings=encodings,
                evaluator_labels=garbler_labels,
                mask_index=mask_index,
            )

    def _client_labels_via_ot(
        self, circuit: Circuit, circuits, encodings, lin_idx, mask_index, sender
    ) -> list[dict[int, bytes]]:
        """Offline OT delivering the client's input labels (Server-Garbler)."""
        pairs, choices = [], []
        for j, encoding in enumerate(encodings):
            share_bits = int_to_bits(self.client_linear_share[lin_idx][j], self.bits)
            mask_bits = int_to_bits(self.client_r[mask_index][j], self.bits)
            for wire, bit in zip(circuit.evaluator_inputs, share_bits + mask_bits):
                pairs.append((encoding.label_for(wire, 0), encoding.label_for(wire, 1)))
                choices.append(bit)
        received, transcript = iknp_transfer(
            pairs, choices, self.rng.spawn(), pool=self._active_pool
        )
        self.counters.ots_performed += len(pairs)
        receiver = CLIENT if sender == SERVER else SERVER
        self.channel.send(receiver, None, nbytes=transcript.column_bytes)
        self.channel.recv(sender)
        self.channel.send(
            sender, None, nbytes=transcript.base_ot_bytes + transcript.ciphertext_bytes
        )
        self.channel.recv(receiver)

        labels: list[dict[int, bytes]] = []
        per = len(circuit.evaluator_inputs)
        for j, (garbled, encoding) in enumerate(zip(circuits, encodings)):
            chunk = received[j * per : (j + 1) * per]
            label_map = dict(zip(circuit.evaluator_inputs, chunk))
            label_map[Circuit.CONST_ZERO] = encoding.label_for(Circuit.CONST_ZERO, 0)
            label_map[Circuit.CONST_ONE] = encoding.label_for(Circuit.CONST_ONE, 1)
            labels.append(label_map)
        return labels

    # -- precompute store integration --------------------------------------------

    def export_offline(
        self, store, model_id: str, client_id: str = "client0",
        name: str | None = None,
    ) -> str:
        """Persist this offline phase into a :class:`PrecomputeStore`.

        Everything the online phase needs — per-layer mask/share vectors
        and the garbled ReLU bundles — is packed into one ``offline``
        entry under (model, params, client), so precomputes minted now
        (possibly by a many-worker pool) can serve inferences later, the
        buffering the paper's streaming system is built around.
        """
        if not self._offline_done:
            raise RuntimeError("offline phase must run before export")
        from repro.runtime.store import (
            KIND_OFFLINE,
            StoreKey,
            serialize_offline_transcript,
        )

        bundles = {
            pos: (b.mask_index, b.circuits, b.encodings, b.evaluator_labels)
            for pos, b in self._relu_bundles.items()
        }
        blob = serialize_offline_transcript(
            self.modulus,
            self.client_r,
            self.server_s,
            self.client_linear_share,
            bundles,
            garbler_role=self.garbler_role,
            truncate_bits=self.truncate_bits,
        )
        key = StoreKey.for_protocol(model_id, self.params, client_id)
        return store.put(key, KIND_OFFLINE, blob, name=name)

    def import_offline(
        self, store, model_id: str, client_id: str = "client0",
        name: str | None = None, consume: bool = True,
    ) -> bool:
        """Load a stored offline transcript instead of running run_offline.

        ``consume`` (default) removes the entry — the buffer-drain
        semantics of the paper's client storage: each stored precompute
        serves one inference. Returns False when no entry is available.
        """
        from collections import defaultdict

        from repro.runtime.store import (
            KIND_OFFLINE,
            StoreKey,
            deserialize_offline_transcript,
        )

        key = StoreKey.for_protocol(model_id, self.params, client_id)
        lookup = name or next(iter(store.names(key, KIND_OFFLINE)), None)
        blob = store.get(key, KIND_OFFLINE, lookup) if lookup else None
        if blob is None:
            return False
        circuit = self._relu_circuit()
        client_r, server_s, shares, bundles = deserialize_offline_transcript(
            blob,
            defaultdict(lambda: circuit),
            garbler_role=self.garbler_role,
            truncate_bits=self.truncate_bits,
        )
        if len(client_r) != len(self.lowered.linears):
            raise ValueError("stored transcript does not match this network")
        for lin, r, s in zip(self.lowered.linears, client_r, server_s):
            if len(r) != lin.n_in or len(s) != lin.n_out:
                raise ValueError("stored transcript does not match this network")
        # Structural check of the ReLU bundles too (a revised network can
        # keep its linear widths but move/add/remove ReLUs): positions,
        # per-layer activation counts, and mask bindings must all match,
        # or the online phase would crash after the entry was consumed.
        expected = {
            pos: (self._next_linear_index(pos), self.lowered.linears[lin_idx].n_out)
            for pos, (kind, lin_idx) in enumerate(self.lowered.steps)
            if kind == "relu"
        }
        found = {
            pos: (mask_index, len(circuits))
            for pos, (mask_index, circuits, _, _) in bundles.items()
        }
        if found != expected:
            raise ValueError(
                "stored transcript's ReLU bundles do not match this network"
            )
        if consume:
            # Only after validation: a rejected transcript stays buffered
            # (it may belong to a differently-configured protocol).
            store.delete(key, KIND_OFFLINE, lookup)
        self.client_r = client_r
        self.server_s = server_s
        self.client_linear_share = shares
        self._relu_bundles = {
            pos: ReluBundle(
                circuits=circuits,
                encodings=encodings,
                evaluator_labels=labels,
                mask_index=mask_index,
            )
            for pos, (mask_index, circuits, encodings, labels) in bundles.items()
        }
        self._offline_done = True
        return True

    # -- online phase ------------------------------------------------------------

    def run_online(self, x: list[int], pool=None) -> list[int]:
        """Run one inference on the client input ``x``; returns the logits.

        ``pool`` (default: the pool passed to the constructor, if any)
        runs the Client-Garbler online label OT's extension stages on a
        :class:`~repro.runtime.pool.PrecomputePool`, cutting online
        latency on multi-core hosts; the channel transcript is
        byte-identical to the sequential path under the same seed.
        """
        if not self._offline_done:
            raise RuntimeError("offline phase must run before online phase")
        if len(x) != self.lowered.input_size:
            raise ValueError("input size mismatch")
        self._active_pool = pool if pool is not None else self._shared_pool
        try:
            return self._run_online_phase(x)
        finally:
            self._active_pool = None

    def _run_online_phase(self, x: list[int]) -> list[int]:
        self.channel.set_phase("online")
        p = self.modulus
        masked = mod_sub_vec(x, self.client_r[0], p, prefer=self._backend_pref)
        self.channel.send(CLIENT, masked)
        server_vec = self.channel.recv(SERVER)

        evaluator = Evaluator()
        for pos, (kind, lin_idx) in enumerate(self.lowered.steps):
            if kind == "linear":
                lin = self.lowered.linears[lin_idx]
                s = self.server_s[lin_idx]
                server_vec = mod_add_vec(
                    matvec_mod(lin.matrix, server_vec, p, prefer=self._backend_pref),
                    s,
                    p,
                    prefer=self._backend_pref,
                )
            else:
                server_vec = self._online_relu(pos, lin_idx, server_vec, evaluator)

        # Final reconstruction: server sends its output share to the client.
        self.channel.send(SERVER, server_vec)
        final_server_share = self.channel.recv(CLIENT)
        final_client_share = self.client_linear_share[
            self.lowered.steps[-1][1]
        ]
        return mod_add_vec(
            final_server_share, final_client_share, p, prefer=self._backend_pref
        )

    def _online_relu(self, pos, lin_idx, server_share, evaluator) -> list[int]:
        bundle = self._relu_bundles[pos]
        p = self.modulus
        if self.garbler_role == "server":
            # Server sends the labels of its own share; client evaluates and
            # returns output labels; server decodes.
            out = []
            all_labels = []
            for j, value in enumerate(server_share):
                encoding = bundle.encodings[j]
                circuit = bundle.circuits[j].circuit
                bits = int_to_bits(value, self.bits)
                all_labels.append(
                    [encoding.label_for(w, b) for w, b in zip(circuit.garbler_inputs, bits)]
                )
            self.channel.send(SERVER, all_labels)
            all_labels = self.channel.recv(CLIENT)
            labels_batch = []
            for j, garbler_labels in enumerate(all_labels):
                circuit = bundle.circuits[j].circuit
                labels = dict(bundle.evaluator_labels[j])
                labels.update(zip(circuit.garbler_inputs, garbler_labels))
                labels_batch.append(labels)
            output_label_batch = evaluator.evaluate_batch(
                bundle.circuits, labels_batch, vectorize=self._vectorize_gc
            )
            self.counters.gc_circuits_evaluated += len(labels_batch)
            self.channel.send(CLIENT, output_label_batch)
            output_label_batch = self.channel.recv(SERVER)
            for j, out_labels in enumerate(output_label_batch):
                bits = Garbler.decode_output_labels(
                    bundle.encodings[j], bundle.circuits[j].circuit, out_labels
                )
                out.append(words_to_int(bits))
            return out

        # Client-Garbler: the server fetches labels for its share via online
        # OT, evaluates, and decodes locally (decode bits shipped offline).
        pairs, choices = [], []
        for j, value in enumerate(server_share):
            encoding = bundle.encodings[j]
            circuit = bundle.circuits[j].circuit
            bits = int_to_bits(value, self.bits)
            for wire, bit in zip(circuit.evaluator_inputs, bits):
                pairs.append((encoding.label_for(wire, 0), encoding.label_for(wire, 1)))
                choices.append(bit)
        received, transcript = iknp_transfer(
            pairs, choices, self.rng.spawn(), pool=self._active_pool
        )
        self.counters.ots_performed += len(pairs)
        self.channel.send(SERVER, None, nbytes=transcript.column_bytes)
        self.channel.recv(CLIENT)
        self.channel.send(
            CLIENT, None, nbytes=transcript.base_ot_bytes + transcript.ciphertext_bytes
        )
        self.channel.recv(SERVER)

        per = self.bits
        labels_batch = []
        for j in range(len(server_share)):
            circuit = bundle.circuits[j].circuit
            # The garbler's label dict preserves insertion order:
            # [CONST_ZERO, CONST_ONE] then its own input wires.
            labels = dict(
                zip(
                    [Circuit.CONST_ZERO, Circuit.CONST_ONE] + circuit.garbler_inputs,
                    bundle.evaluator_labels[j].values(),
                )
            )
            chunk = received[j * per : (j + 1) * per]
            labels.update(zip(circuit.evaluator_inputs, chunk))
            labels_batch.append(labels)
        output_label_batch = evaluator.evaluate_batch(
            bundle.circuits, labels_batch, vectorize=self._vectorize_gc
        )
        self.counters.gc_circuits_evaluated += len(labels_batch)
        return [
            words_to_int(evaluator.decode(garbled, out_labels))
            for garbled, out_labels in zip(bundle.circuits, output_label_batch)
        ]

    # -- reference ---------------------------------------------------------------

    def plaintext_reference(self, x: list[int]) -> list[int]:
        """Field-exact plaintext evaluation of the lowered program."""
        p = self.modulus
        vec = [v % p for v in x]
        threshold = (p + 1) // 2
        for kind, lin_idx in self.lowered.steps:
            lin = self.lowered.linears[lin_idx]
            if kind == "linear":
                vec = matvec_mod(lin.matrix, vec, p, prefer=self._backend_pref)
            else:
                vec = [
                    (v >> self.truncate_bits) if v < threshold else 0 for v in vec
                ]
        return vec
