"""The functional two-party hybrid private-inference protocol (DELPHI).

Executes real cryptography end to end on small networks: BFV homomorphic
encryption generates the linear-layer share correlations offline, garbled
circuits evaluate ReLUs, IKNP OT extension delivers wire labels, and both
parties exchange every message through a byte-counted channel. The result
is bit-exact against the plaintext field evaluation of the same network.

Two garbling roles are supported (§2.2 and §5.1 of the paper):

* ``ServerGarbler`` — the baseline: the server garbles ReLUs offline and
  the client stores and later evaluates them. The client's input labels
  travel by offline OT; the server's share labels are sent online.
* ``ClientGarbler`` — the proposed optimization: the client garbles and
  the *server* stores and evaluates, so the heavy storage moves server-side
  and online GC evaluation runs on the fast server; the server's input
  labels must now be fetched by *online* OT.

The protocol invariant through the network is DELPHI's: before linear
layer i the server holds x_i - r_i and the client holds r_i; after it the
server holds W(x_i - r_i) + s_i and the client's offline share is
W r_i - s_i, so their sum is the true activation.

Since the session redesign, :class:`HybridProtocol` is a thin façade: it
wires a :class:`~repro.core.session.ClientSession` and a
:class:`~repro.core.session.ServerSession` over a
:class:`~repro.network.transport.Transport` pair (in-memory by default,
loopback TCP with ``transport="socket"``) and drives them message by
message. The two state machines exchange only serialized wire messages;
the façade merely schedules them and preserves the original one-object
API (``run_offline`` / ``run_online`` / ``channel`` / ``counters`` /
``export_offline`` / ``import_offline``) for callers, experiments, and
the parity suites. The pre-redesign monolith survives, frozen, in
:mod:`repro.core._monolith` as the transcript-parity reference.
"""

from __future__ import annotations

import os
import time

# Re-exported for compatibility: lowering and the shared protocol
# dataclasses historically lived in this module.
from repro.core.lowering import (  # noqa: F401
    LoweredLinear,
    LoweredNetwork,
    lower_network,
    next_linear_index,
    plaintext_reference,
)
from repro.core.session import (  # noqa: F401
    DONE,
    WAITING,
    ClientSession,
    ProtocolCounters,
    ReluBundle,
    ServerSession,
    resolve_protocol_params,
    role_seed,
)
from repro.he.params import BfvParams, toy_params
from repro.network.channel import CLIENT, SERVER, Channel  # noqa: F401
from repro.network.transport import InMemoryTransport, SocketTransport

_DEADLOCK_SPINS = 50  # idle scheduler rounds before declaring deadlock


def make_transport_pair(kind: str | None = None):
    """A connected (client, server) transport pair of the requested kind.

    ``kind`` resolves explicit > ``REPRO_TRANSPORT`` > ``"memory"``.
    ``"memory"`` is the zero-copy in-process pair; ``"socket"`` runs the
    same protocol over loopback TCP (real kernel sockets, one process).
    """
    kind = kind or os.environ.get("REPRO_TRANSPORT", "").strip() or "memory"
    if kind == "memory":
        return InMemoryTransport.pair()
    if kind == "socket":
        return SocketTransport.loopback_pair()
    raise ValueError(f"unknown transport {kind!r} (expected 'memory' or 'socket')")


def split_offline_state(
    blob: bytes,
    lowered,
    circuit,
    garbler_role: str,
    truncate_bits: int = 0,
):
    """Validate a stored offline transcript and split it into role halves.

    Returns ``((client_r, client_shares, client_bundles), (server_s,
    server_bundles))`` — exactly the arguments each session's
    ``load_offline_state`` takes. Validation runs against ``lowered``
    (shape data only, so the client's shape-only lowering works) and
    raises ``ValueError`` on any mismatch, *before* the caller consumes
    the entry. Shared by :meth:`HybridProtocol.import_offline` and the
    serving gateway's precompute hand-off, so both reject exactly the
    same stale transcripts.
    """
    from collections import defaultdict

    from repro.runtime.store import deserialize_offline_transcript

    client_r, server_s, shares, bundles = deserialize_offline_transcript(
        blob,
        defaultdict(lambda: circuit),
        garbler_role=garbler_role,
        truncate_bits=truncate_bits,
    )
    if len(client_r) != len(lowered.linears):
        raise ValueError("stored transcript does not match this network")
    for lin, r, s in zip(lowered.linears, client_r, server_s):
        if len(r) != lin.n_in or len(s) != lin.n_out:
            raise ValueError("stored transcript does not match this network")
    # Structural check of the ReLU bundles too (a revised network can
    # keep its linear widths but move/add/remove ReLUs): positions,
    # per-layer activation counts, and mask bindings must all match,
    # or the online phase would crash after the entry was consumed.
    expected = {
        pos: (next_linear_index(lowered, pos), lowered.linears[lin_idx].n_out)
        for pos, (kind, lin_idx) in enumerate(lowered.steps)
        if kind == "relu"
    }
    found = {
        pos: (mask_index, len(circuits))
        for pos, (mask_index, circuits, _, _) in bundles.items()
    }
    if found != expected:
        raise ValueError(
            "stored transcript's ReLU bundles do not match this network"
        )
    evaluator_bundles, garbler_bundles = {}, {}
    for pos, (mask_index, circuits, encodings, labels) in bundles.items():
        evaluator_bundles[pos] = ReluBundle(
            circuits=circuits,
            encodings=None,
            evaluator_labels=labels,
            mask_index=mask_index,
        )
        garbler_bundles[pos] = ReluBundle(
            circuits=None,
            encodings=encodings,
            evaluator_labels=None,
            mask_index=mask_index,
        )
    if garbler_role == "server":
        client_bundles, server_bundles = evaluator_bundles, garbler_bundles
    else:
        client_bundles, server_bundles = garbler_bundles, evaluator_bundles
    return (client_r, shares, client_bundles), (server_s, server_bundles)


class HybridProtocol:
    """Runs one private inference between a client and a server session.

    The ``garbler`` argument selects Server-Garbler ("server") or
    Client-Garbler ("client"). Weights live on the server; the input vector
    is the client's secret. The two sessions are exposed as ``.client``
    and ``.server`` — drivers that want to interleave several protocols
    (the serving loop) use ``start_offline()`` / ``step()`` /
    ``start_online(x)`` directly instead of the blocking ``run_*`` calls.
    """

    def __init__(
        self,
        network,
        params: BfvParams | None = None,
        garbler: str = "server",
        seed: int | None = None,
        truncate_bits: int = 0,
        backend: str | None = None,
        representation: str | None = None,
        workers: int | None = None,
        pool=None,
        transport: str | tuple | None = None,
    ):
        self.params = resolve_protocol_params(params, backend, representation)
        self.garbler_role = garbler
        self.truncate_bits = truncate_bits
        if isinstance(transport, (tuple, list)):
            client_end, server_end = transport
        else:
            client_end, server_end = make_transport_pair(transport)
        # Precompute parallelism: an explicit pool wins; otherwise `workers`
        # (explicit > REPRO_WORKERS > 1) makes run_offline create ONE pool
        # shared by both sessions for the duration of the offline phase. A
        # constructor-provided pool also serves run_online's label OT
        # (Client-Garbler); `workers` alone stays offline-only, so the
        # short-lived online phase never pays a pool's fork cost unasked.
        # Pooled and sequential phases are transcript-identical under the
        # same seed (all randomness stays parent-side of the pool).
        from repro.runtime.pool import resolve_workers

        self._shared_pool = pool
        self._workers = (
            pool.workers if pool is not None else resolve_workers(workers, default=1)
        )
        self._active_pool = None
        self._own_pool = None
        # Sessions get workers=1: pool lifecycle is owned here so the two
        # halves share one set of worker processes.
        self.client = ClientSession(
            network,
            params=self.params,
            garbler=garbler,
            seed=role_seed(seed, CLIENT),
            truncate_bits=truncate_bits,
            transport=client_end,
            workers=1,
        )
        # The client lowers shape-only (cheap, no weights); only the
        # server pays the full matrix expansion — per-protocol setup cost
        # stays at the monolith's one lowering.
        self.server = ServerSession(
            network,
            params=self.params,
            garbler=garbler,
            seed=role_seed(seed, SERVER),
            truncate_bits=truncate_bits,
            transport=server_end,
            workers=1,
        )
        self.modulus = self.client.modulus
        self.bits = self.client.bits
        self.lowered = self.server.lowered  # the weight-bearing program
        self._backend_pref = self.client._backend_pref
        self._vectorize_gc = self.client._vectorize_gc

    # -- compatibility surface -------------------------------------------------

    @property
    def channel(self) -> Channel:
        """Byte-accounting view of the protocol (the client session's).

        Both sessions charge identical per-phase stats; exposing the
        client's keeps the monolith-era reading (`protocol.channel`)
        working, including replacing it with a recording subclass.
        """
        return self.client.channel

    @channel.setter
    def channel(self, value: Channel) -> None:
        self.client.channel = value

    @property
    def counters(self) -> ProtocolCounters:
        """Merged operation counters across both sessions."""
        return self.client.counters.merged_with(self.server.counters)

    @property
    def client_r(self) -> list[list[int]]:
        return self.client.client_r

    @property
    def server_s(self) -> list[list[int]]:
        return self.server.server_s

    @property
    def client_linear_share(self) -> list[list[int]]:
        return self.client.client_linear_share

    @property
    def _offline_done(self) -> bool:
        return self.client.offline_done and self.server.offline_done

    def plaintext_reference(self, x: list[int]) -> list[int]:
        """Field-exact plaintext evaluation of the lowered program."""
        return plaintext_reference(
            self.lowered, x, self.truncate_bits, prefer=self.params.backend
        )

    def close(self) -> None:
        """Release both sessions' transports (sockets in particular)."""
        self.client.close()
        self.server.close()

    def shutdown(self) -> None:
        """Abort any active phase (closing an owned pool) and close.

        The public cleanup surface for external schedulers: safe to call
        on success (phase teardown is idempotent) and on error paths
        where a phase died mid-flight.
        """
        self._end_phase()
        self.close()

    def reset_for_request(self) -> None:
        """Recycle both sessions for a fresh request (keep-alive reuse).

        Mirrors :meth:`ProtocolSession.reset_for_request`: the transports,
        channel accounting, counters, lowerings, and RNG streams survive;
        the per-request offline state is cleared so the pair can run (or
        adopt) a new offline phase and serve another inference.
        """
        self.client.reset_for_request()
        self.server.reset_for_request()

    # -- phase scheduling ------------------------------------------------------

    def _phase_pool(self, create_own: bool):
        pool = self._shared_pool
        if pool is None and create_own and self._workers > 1:
            from repro.core.session import make_phase_pool

            pool = self._own_pool = make_phase_pool(
                self.params.backend, self.params, self._workers
            )
        return pool

    def start_offline(self) -> None:
        """Arm the offline phase on both sessions (one shared pool)."""
        pool = self._phase_pool(create_own=True)
        self._active_pool = pool
        self.client.start_offline(pool=pool)
        self.server.start_offline(pool=pool)

    def start_online(self, x: list[int], pool=None) -> None:
        """Arm one inference on both sessions."""
        active = pool if pool is not None else self._shared_pool
        self._active_pool = active
        self.client.start_online(x, pool=active)
        self.server.start_online(pool=active)

    def step(self) -> bool:
        """One scheduling round over both sessions; True when phase done."""
        c = self.client.step()
        s = self.server.step()
        if c == DONE and s == DONE:
            self._end_phase()
            return True
        return False

    def _end_phase(self) -> None:
        self._active_pool = None
        if self._own_pool is not None:
            self._own_pool.close()
            self._own_pool = None

    def _stalled(self) -> bool:
        return not (
            self.client.transport.pending or self.server.transport.pending
        )

    def drive_steps(self):
        """Generator stepping the active phase with the stall policy.

        Yields after every non-final scheduling round, so external
        schedulers (the serving loop) interleave protocols while keeping
        the same deadlock detection the blocking ``run_*`` calls get: an
        idle in-memory pair raises immediately; sockets get a bounded
        spin with a short sleep for in-flight bytes to land.
        """
        idle = 0
        while not self.step():
            if self._stalled():
                idle += 1
                if isinstance(self.client.transport, InMemoryTransport):
                    raise RuntimeError(
                        "protocol deadlock: both sessions are waiting and no "
                        "message is in flight"
                    )
                if idle > _DEADLOCK_SPINS:
                    raise RuntimeError(
                        "protocol deadlock: no transport progress"
                    )
                time.sleep(0.001)  # sockets: let in-flight bytes land
            else:
                idle = 0
            yield

    def _drive(self) -> None:
        """Step both sessions until the active phase completes."""
        for _ in self.drive_steps():
            pass

    # -- blocking phase API (the monolith-era surface) -------------------------

    def run_offline(self) -> None:
        """Execute the full offline phase (HE correlations + garbling + OT).

        With ``workers > 1`` (or an explicit ``pool``), garbling, the OT
        extension stages, and the Galois key products run on a
        :class:`~repro.runtime.pool.PrecomputePool`; every transcript
        byte matches the sequential run under the same seed.
        """
        self.start_offline()
        try:
            self._drive()
        finally:
            self._end_phase()

    def run_online(self, x: list[int], pool=None) -> list[int]:
        """Run one inference on the client input ``x``; returns the logits.

        ``pool`` (default: the pool passed to the constructor, if any)
        runs the Client-Garbler online label OT's extension stages on a
        :class:`~repro.runtime.pool.PrecomputePool`, cutting online
        latency on multi-core hosts; the channel transcript is
        byte-identical to the sequential path under the same seed.
        """
        if not self._offline_done:
            raise RuntimeError("offline phase must run before online phase")
        self.start_online(x, pool=pool)
        try:
            self._drive()
        finally:
            self._end_phase()
        return self.client.finish()

    # -- precompute store integration ------------------------------------------

    def offline_blob(self) -> bytes:
        """Serialize this completed offline phase into one store entry.

        The union of both sessions' state (per-layer mask/share vectors
        plus every garbled ReLU bundle); :func:`split_offline_state`
        splits it back per role. Exposed separately from
        :meth:`export_offline` so a pool worker can mint the blob in its
        own process and ship bytes back for the parent to admit.
        """
        if not self._offline_done:
            raise RuntimeError("offline phase must run before export")
        from repro.runtime.store import serialize_offline_transcript

        bundles = {}
        evaluator = self.client if self.garbler_role == "server" else self.server
        garbler = self.server if self.garbler_role == "server" else self.client
        for pos, eb in evaluator._relu_bundles.items():
            gb = garbler._relu_bundles[pos]
            bundles[pos] = (eb.mask_index, eb.circuits, gb.encodings, eb.evaluator_labels)
        return serialize_offline_transcript(
            self.modulus,
            self.client.client_r,
            self.server.server_s,
            self.client.client_linear_share,
            bundles,
            garbler_role=self.garbler_role,
            truncate_bits=self.truncate_bits,
        )

    def export_offline(
        self, store, model_id: str, client_id: str = "client0",
        name: str | None = None,
    ) -> str:
        """Persist this offline phase into a :class:`PrecomputeStore`.

        Everything the online phase needs — per-layer mask/share vectors
        and the garbled ReLU bundles — is packed into one ``offline``
        entry under (model, params, client), so precomputes minted now
        (possibly by a many-worker pool) can serve inferences later, the
        buffering the paper's streaming system is built around. The entry
        is the union of both sessions' state; import splits it back.
        """
        from repro.runtime.store import KIND_OFFLINE, StoreKey

        key = StoreKey.for_protocol(model_id, self.params, client_id)
        return store.put(key, KIND_OFFLINE, self.offline_blob(), name=name)

    def import_offline(
        self, store, model_id: str, client_id: str = "client0",
        name: str | None = None, consume: bool = True,
    ) -> bool:
        """Load a stored offline transcript instead of running run_offline.

        ``consume`` (default) removes the entry — the buffer-drain
        semantics of the paper's client storage: each stored precompute
        serves one inference. Returns False when no entry is available.
        """
        from repro.runtime.store import KIND_OFFLINE, StoreKey

        key = StoreKey.for_protocol(model_id, self.params, client_id)
        lookup = name or next(iter(store.names(key, KIND_OFFLINE)), None)
        blob = store.get(key, KIND_OFFLINE, lookup) if lookup else None
        if blob is None:
            return False
        # Bind stored circuits to the topology of the session that will
        # evaluate them (the client under Server-Garbler, else the server).
        evaluator = self.client if self.garbler_role == "server" else self.server
        client_state, server_state = split_offline_state(
            blob,
            self.lowered,
            evaluator.relu_circuit(),
            self.garbler_role,
            self.truncate_bits,
        )
        if consume:
            # Only after validation: a rejected transcript stays buffered
            # (it may belong to a differently-configured protocol).
            store.delete(key, KIND_OFFLINE, lookup)
        self.client.load_offline_state(*client_state)
        self.server.load_offline_state(*server_state)
        return True
