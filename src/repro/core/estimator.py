"""End-to-end protocol latency estimation (single inference).

Combines the calibrated network cost profile, device profiles, and the TDD
link into the paper's Table 1 decomposition — offline/online x GC/HE/SS/
communication — for either protocol, with LPHE and WSA toggles and the
speedup knobs used by the Figure 14 future-optimization analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.bandwidth import TddLink
from repro.profiling.devices import ATOM, EPYC, DeviceProfile
from repro.profiling.model_costs import (
    CommVolumes,
    NetworkCostProfile,
    Protocol,
)
from repro.core.wsa import optimal_upload_fraction


@dataclass(frozen=True)
class SpeedupKnobs:
    """Hypothetical accelerator speedups for the future-optimization study."""

    gc: float = 1.0  # garbling and evaluation
    he: float = 1.0  # homomorphic evaluation (server side)
    bandwidth: float = 1.0
    relu_reduction: float = 1.0  # PI-friendly architectures (fewer ReLUs)


@dataclass(frozen=True)
class PhaseBreakdown:
    """Seconds per cost source within one phase (a Table 1 row)."""

    gc: float
    he: float
    ss: float
    comm: float

    @property
    def total(self) -> float:
        return self.gc + self.he + self.ss + self.comm


@dataclass(frozen=True)
class ProtocolEstimate:
    """Full single-inference latency estimate."""

    protocol: Protocol
    offline: PhaseBreakdown
    online: PhaseBreakdown
    client_storage_bytes: float
    server_storage_bytes: float
    upload_fraction: float
    client_energy_joules: float

    @property
    def total_seconds(self) -> float:
        return self.offline.total + self.online.total

    @property
    def offline_fraction(self) -> float:
        return self.offline.total / self.total_seconds

    def table_rows(self) -> dict[str, dict[str, float]]:
        """Table 1 layout: rows offline/online/total x columns GC/HE/SS/Comms."""
        rows = {}
        for name, phase in (("offline", self.offline), ("online", self.online)):
            rows[name] = {
                "GC": phase.gc,
                "HE": phase.he,
                "SS": phase.ss,
                "Comms": phase.comm,
                "Total": phase.total,
            }
        rows["total"] = {
            key: rows["offline"][key] + rows["online"][key]
            for key in rows["offline"]
        }
        return rows


def _scaled_volumes(volumes: CommVolumes, relu_scale: float, profile) -> CommVolumes:
    """Shrink the per-ReLU communication terms by a ReLU-reduction factor."""
    if relu_scale == 1.0:
        return volumes
    # Everything except HE ciphertexts and the input/result vectors scales
    # with ReLU count; approximate by scaling the whole per-phase volumes
    # minus the HE/input floors.
    from repro.profiling.model_costs import HE_KEY_BYTES
    from repro.profiling import calibration as cal

    he_up = profile.he_input_cts * cal.HE_CIPHERTEXT_BYTES + HE_KEY_BYTES
    he_down = profile.he_output_cts * cal.HE_CIPHERTEXT_BYTES
    input_up = profile.input_elements * cal.FIELD_BYTES
    result_down = profile.output_elements * cal.FIELD_BYTES
    return CommVolumes(
        offline_up=he_up + (volumes.offline_up - he_up) * relu_scale,
        offline_down=he_down + (volumes.offline_down - he_down) * relu_scale,
        online_up=input_up + (volumes.online_up - input_up) * relu_scale,
        online_down=result_down + (volumes.online_down - result_down) * relu_scale,
    )


def estimate(
    profile: NetworkCostProfile,
    protocol: Protocol,
    client: DeviceProfile = ATOM,
    server: DeviceProfile = EPYC,
    total_bps: float = 1e9,
    lphe: bool = True,
    wsa: bool = True,
    knobs: SpeedupKnobs = SpeedupKnobs(),
) -> ProtocolEstimate:
    """Estimate one private inference end to end.

    ``lphe`` switches the offline HE pass between sequential and
    layer-parallel execution; ``wsa`` switches the link between the even
    split and the optimal slot allocation; ``knobs`` applies the Figure 14
    accelerator/architecture speedups.
    """
    relu_scale = 1.0 / knobs.relu_reduction
    volumes = _scaled_volumes(profile.comm(protocol), relu_scale, profile)
    fraction = optimal_upload_fraction(volumes) if wsa else 0.5
    link = TddLink(total_bps * knobs.bandwidth, fraction)

    he_seconds = (
        profile.he_lphe_seconds(server) if lphe else profile.he_sequential_seconds(server)
    )
    # The HE-accelerator knob covers both sides: server evaluation and the
    # client's encrypt/decrypt (client-side HE acceleration, e.g. [82]).
    he_seconds = (he_seconds + profile.client_he_seconds(client)) / knobs.he
    garbler, evaluator = (
        (server, client) if protocol is Protocol.SERVER_GARBLER else (client, server)
    )
    garble = profile.garble_seconds(garbler) * relu_scale / knobs.gc
    gc_eval = profile.gc_eval_seconds(evaluator) * relu_scale / knobs.gc

    offline = PhaseBreakdown(
        gc=garble,
        he=he_seconds,
        ss=0.0,
        comm=link.transfer_seconds(volumes.offline_up, volumes.offline_down),
    )
    online = PhaseBreakdown(
        gc=gc_eval,
        he=0.0,
        ss=profile.ss_online_seconds(server),
        comm=link.transfer_seconds(volumes.online_up, volumes.online_down),
    )
    storage = profile.storage(protocol)
    return ProtocolEstimate(
        protocol=protocol,
        offline=offline,
        online=online,
        client_storage_bytes=storage.client_bytes * relu_scale,
        server_storage_bytes=storage.server_bytes * relu_scale,
        upload_fraction=fraction,
        client_energy_joules=profile.client_energy_joules(protocol) * relu_scale,
    )
