"""Cross-validation between the functional protocol and the cost model.

The paper validates its simulator against DELPHI measurements (0.9%
relative error, §3). We do the analogue internally: run the *functional*
two-party protocol — which counts every byte it actually sends — and
compare against the *analytic* communication model (the same formulas the
simulator uses at testbed scale, re-parameterized for the toy field and
toy BFV parameters of the functional run).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.protocol import HybridProtocol
from repro.gc.relu import ReluCircuitSpec, build_relu_circuit
from repro.ot.extension import KAPPA
from repro.profiling.calibration import LABEL_BYTES


@dataclass(frozen=True)
class CommValidation:
    """Measured vs predicted bytes for each phase/direction."""

    measured: dict[str, int]
    predicted: dict[str, float]

    def relative_errors(self) -> dict[str, float]:
        out = {}
        for key, measured in self.measured.items():
            predicted = self.predicted[key]
            if measured == 0 and predicted == 0:
                out[key] = 0.0
            else:
                out[key] = abs(measured - predicted) / max(measured, predicted)
        return out

    @property
    def worst_error(self) -> float:
        return max(self.relative_errors().values())


def _iknp_bytes(n_ots: int) -> tuple[float, float]:
    """(receiver->sender, sender->receiver) bytes of one IKNP batch.

    Delegates to the extension's own formula so the predictor can never
    drift from what the protocol actually charges.
    """
    from repro.ot.extension import iknp_wire_bytes

    return iknp_wire_bytes(n_ots, LABEL_BYTES)


def predict_comm(protocol: HybridProtocol) -> dict[str, float]:
    """Analytic communication prediction for a functional protocol setup.

    Mirrors the per-ReLU formulas of :mod:`repro.profiling.model_costs`,
    re-parameterized by the protocol's actual field width, ciphertext
    size, and garbled-circuit size.
    """
    lowered = protocol.lowered
    params = protocol.params
    bits = protocol.bits
    field_bytes = (bits + 7) // 8

    relu_layers = [
        lowered.linears[idx].n_out
        for kind, idx in lowered.steps
        if kind == "relu"
    ]
    relu_count = sum(relu_layers)
    n_linear = len(lowered.linears)
    mask_owner = "evaluator" if protocol.garbler_role == "server" else "garbler"
    spec = ReluCircuitSpec(bits=bits, modulus=protocol.modulus, mask_owner=mask_owner)
    circuit = build_relu_circuit(spec)
    gc_tables = 2 * LABEL_BYTES * circuit.and_count

    # Public key (one ciphertext-sized pair) plus one Galois key with one
    # (k0, k1) pair per decomposition digit.
    key_bytes = params.ciphertext_bytes * (1 + params.num_decomp_digits)
    he_up = n_linear * params.ciphertext_bytes
    he_down = n_linear * params.ciphertext_bytes
    input_up = lowered.input_size * field_bytes
    result_down = lowered.output_size * field_bytes
    word_labels = bits * LABEL_BYTES

    if protocol.garbler_role == "server":
        # Offline: GCs + label OT (2 words per ReLU) travel down; HE up/down.
        per_layer_ot = [_iknp_bytes(2 * bits * n) for n in relu_layers]
        offline_up = key_bytes + he_up + sum(c for c, _ in per_layer_ot)
        offline_down = he_down + relu_count * gc_tables + sum(
            p for _, p in per_layer_ot
        )
        online_up = input_up + relu_count * word_labels
        online_down = relu_count * word_labels + result_down
    else:
        # Offline: client uploads GCs (+decode bits) and its own labels.
        decode_bytes = (bits + 7) // 8
        own_labels = (2 * bits + 2) * LABEL_BYTES  # share+mask words + constants
        offline_up = (
            key_bytes
            + he_up
            + relu_count * (gc_tables + decode_bytes + own_labels)
        )
        offline_down = he_down
        per_layer_ot = [_iknp_bytes(bits * n) for n in relu_layers]
        online_up = input_up + sum(p for _, p in per_layer_ot)
        online_down = sum(c for c, _ in per_layer_ot) + result_down

    return {
        "offline_up": offline_up,
        "offline_down": offline_down,
        "online_up": online_up,
        "online_down": online_down,
    }


def validate_protocol_comm(protocol: HybridProtocol, x: list[int]) -> CommValidation:
    """Run the protocol and compare measured bytes against the prediction."""
    protocol.run_offline()
    protocol.run_online(x)
    return CommValidation(
        measured=protocol.channel.summary(),
        predicted=predict_comm(protocol),
    )
