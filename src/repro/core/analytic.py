"""Analytic queueing approximations for the PI serving system.

A cross-check on the discrete-event simulator: with Poisson arrivals and a
(nearly) deterministic service time the system is M/D/1, whose mean queue
wait has the Pollaczek-Khinchine closed form. Two regimes bracket the
simulator's behaviour:

* buffer never depletes  -> service time = online phase only;
* buffer always empty    -> service time = offline + online ("incurred
  online", the paper's high-rate asymptote).

The simulator must land between these curves (and approach each in its
regime); ``tests/test_core_analytic.py`` enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import SystemConfig, pipeline_times
from repro.profiling.model_costs import Protocol


@dataclass(frozen=True)
class AnalyticLatency:
    service_seconds: float
    queue_seconds: float
    utilization: float

    @property
    def total_seconds(self) -> float:
        return self.service_seconds + self.queue_seconds

    @property
    def stable(self) -> bool:
        return self.utilization < 1.0


def online_service_seconds(config: SystemConfig) -> float:
    """Online-phase duration: comm + GC evaluation + SS."""
    profile = config.profile
    link = config.link()
    volumes = profile.comm(config.protocol)
    evaluator = (
        config.client if config.protocol is Protocol.SERVER_GARBLER else config.server
    )
    return (
        link.transfer_seconds(volumes.online_up, volumes.online_down)
        + profile.gc_eval_seconds(evaluator)
        + profile.ss_online_seconds(config.server)
    )


def offline_service_seconds(config: SystemConfig) -> float:
    """Full offline pipeline duration when incurred inline."""
    t = pipeline_times(config)
    link = config.link()
    return (
        t.client_he
        + t.server_he
        + t.garble
        + link.upload_seconds(t.offline_up_bytes)
        + link.download_seconds(t.offline_down_bytes)
    )


def md1_mean_wait(service: float, mean_interarrival: float) -> float:
    """Pollaczek-Khinchine mean queue wait for M/D/1 (infinite if unstable)."""
    rho = service / mean_interarrival
    if rho >= 1.0:
        return float("inf")
    lam = 1.0 / mean_interarrival
    return rho * rho / (2.0 * lam * (1.0 - rho))


def best_case_latency(config: SystemConfig, mean_interarrival: float) -> AnalyticLatency:
    """Latency if every request finds a buffered pre-compute."""
    service = online_service_seconds(config)
    return AnalyticLatency(
        service_seconds=service,
        queue_seconds=md1_mean_wait(service, mean_interarrival),
        utilization=service / mean_interarrival,
    )


def worst_case_latency(config: SystemConfig, mean_interarrival: float) -> AnalyticLatency:
    """Latency if every request must run the offline phase inline."""
    service = online_service_seconds(config) + offline_service_seconds(config)
    return AnalyticLatency(
        service_seconds=service,
        queue_seconds=md1_mean_wait(service, mean_interarrival),
        utilization=service / mean_interarrival,
    )


def max_sustainable_rate_per_minute(config: SystemConfig) -> float:
    """Upper bound on throughput (requests/minute) from the service floor.

    With no buffer the full protocol serializes per request. With a buffer
    the binding resource is the slower of the online chain and the offline
    production period; RLP amortizes production across its concurrent
    workers (bounded by buffer slots and server cores).
    """
    from repro.core.system import OfflineParallelism

    online = online_service_seconds(config)
    production = offline_service_seconds(config)
    if config.buffer_capacity < 1:
        return 60.0 / (online + production)
    if config.parallelism is OfflineParallelism.RLP:
        workers = min(config.server.cores, config.buffer_capacity)
        production /= max(1, workers)
    return 60.0 / max(online, production)
