"""Future-optimization analysis (§6, Figure 14).

Starting from the optimized protocols, accumulate hypothetical research
advances — GC acceleration (FASE's 19x, then 100x), HE accelerators
(1000x), next-generation wireless (10x bandwidth), and PI-friendly
architectures (10x fewer ReLUs) — and report total PI latency plus the
offline share after each step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.estimator import ProtocolEstimate, SpeedupKnobs, estimate
from repro.profiling.devices import ATOM, EPYC, DeviceProfile
from repro.profiling.model_costs import NetworkCostProfile, Protocol


@dataclass(frozen=True)
class WaterfallStep:
    label: str
    estimate: ProtocolEstimate

    @property
    def total_seconds(self) -> float:
        return self.estimate.total_seconds

    @property
    def offline_percent(self) -> float:
        return 100.0 * self.estimate.offline_fraction


# The accumulating knob settings of Figure 14, applied to Client-Garbler.
FUTURE_STEPS: tuple[tuple[str, SpeedupKnobs], ...] = (
    ("Client Garbler", SpeedupKnobs()),
    ("GC FASE 19x", SpeedupKnobs(gc=19.0)),
    ("GC 100x", SpeedupKnobs(gc=100.0)),
    ("HE 1000x", SpeedupKnobs(gc=100.0, he=1000.0)),
    ("BW 10x", SpeedupKnobs(gc=100.0, he=1000.0, bandwidth=10.0)),
    (
        "Fewer ReLUs",
        SpeedupKnobs(gc=100.0, he=1000.0, bandwidth=10.0, relu_reduction=10.0),
    ),
)


def waterfall(
    profile: NetworkCostProfile,
    client: DeviceProfile = ATOM,
    server: DeviceProfile = EPYC,
    total_bps: float = 1e9,
) -> list[WaterfallStep]:
    """The full Figure 14 series, including the Server-Garbler* baseline."""
    steps = [
        WaterfallStep(
            "Server Garbler*",
            estimate(
                profile, Protocol.SERVER_GARBLER, client, server, total_bps,
                lphe=True, wsa=True,
            ),
        )
    ]
    for label, knobs in FUTURE_STEPS:
        steps.append(
            WaterfallStep(
                label,
                estimate(
                    profile, Protocol.CLIENT_GARBLER, client, server, total_bps,
                    lphe=True, wsa=True, knobs=knobs,
                ),
            )
        )
    return steps


def breakdown_components(step: WaterfallStep) -> dict[str, float]:
    """Normalized latency components (the stacked bars of Figure 14 bottom)."""
    e = step.estimate
    total = e.total_seconds
    return {
        "Offline Comm.": e.offline.comm / total,
        "GC.Garble": e.offline.gc / total,
        "HE.Eval": e.offline.he / total,
        "Online Comm.": e.online.comm / total,
        "GC.Eval": e.online.gc / total,
        "SS.Eval": e.online.ss / total,
    }
