"""Core: hybrid PI protocols, cost estimation, system simulation, WSA."""

from repro.core.analytic import (
    best_case_latency,
    max_sustainable_rate_per_minute,
    worst_case_latency,
)
from repro.core.estimator import (
    PhaseBreakdown,
    ProtocolEstimate,
    SpeedupKnobs,
    estimate,
)
from repro.core.future import FUTURE_STEPS, WaterfallStep, waterfall
from repro.core.multiclient import MultiClientConfig, MultiClientSimulator
from repro.core.protocol import HybridProtocol, LoweredNetwork, lower_network
from repro.core.session import ClientSession, ServerSession
from repro.core.validation import predict_comm, validate_protocol_comm
from repro.core.system import (
    OfflineParallelism,
    PiSystemSimulator,
    SimulationResult,
    SystemConfig,
    pipeline_times,
    simulate_mean_latency,
)
from repro.core.wsa import (
    comm_seconds,
    improvement_over_even_split,
    optimal_upload_fraction,
    optimize,
    sweep_allocations,
)

__all__ = [
    "ClientSession",
    "FUTURE_STEPS",
    "HybridProtocol",
    "ServerSession",
    "LoweredNetwork",
    "MultiClientConfig",
    "MultiClientSimulator",
    "OfflineParallelism",
    "best_case_latency",
    "max_sustainable_rate_per_minute",
    "predict_comm",
    "validate_protocol_comm",
    "worst_case_latency",
    "PhaseBreakdown",
    "PiSystemSimulator",
    "ProtocolEstimate",
    "SimulationResult",
    "SpeedupKnobs",
    "SystemConfig",
    "WaterfallStep",
    "comm_seconds",
    "estimate",
    "improvement_over_even_split",
    "lower_network",
    "optimal_upload_fraction",
    "optimize",
    "pipeline_times",
    "simulate_mean_latency",
    "sweep_allocations",
    "waterfall",
]
