"""Streaming private-inference system simulation.

Models the paper's single-client / single-server deployment: Poisson
inference requests served FIFO, a client storage budget that bounds how
many offline pre-computes can be buffered, offline pipelines that refill
the buffer during idle time, and a TDD wireless link shared between
offline transfers and online traffic. This is the machinery behind
Figures 7, 10, 12, and 13.

Offline parallelism strategies (§5.2):

* ``lphe``  — one pre-compute at a time, its HE layers spread across all
  server cores (makespan = LPT schedule of layer times).
* ``rlp``   — request-level parallelism: many concurrent pre-computes,
  each confined to a single core on both devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.wsa import optimal_upload_fraction
from repro.network.bandwidth import TddLink
from repro.profiling.devices import ATOM, EPYC, DeviceProfile
from repro.profiling.model_costs import NetworkCostProfile, Protocol
from repro.simulation.engine import Container, Environment, Resource, Store
from repro.workload.generators import InferenceRequest, PoissonWorkload


class OfflineParallelism(Enum):
    SEQUENTIAL = "sequential"  # baseline DELPHI: one pre-compute, one HE core
    LPHE = "lphe"  # one pre-compute, HE layers spread across server cores
    RLP = "rlp"  # many single-core pre-computes in parallel


@dataclass(frozen=True)
class SystemConfig:
    """Everything that defines one simulated deployment."""

    profile: NetworkCostProfile
    protocol: Protocol = Protocol.CLIENT_GARBLER
    client: DeviceProfile = ATOM
    server: DeviceProfile = EPYC
    client_storage_bytes: float = 16e9
    server_storage_bytes: float = 10_000e9
    total_bps: float = 1e9
    wsa: bool = True
    parallelism: OfflineParallelism = OfflineParallelism.LPHE
    # Compute backend ('auto'/'python'/'numpy') the functional substrate of
    # this deployment runs on. The analytic simulation itself is
    # backend-agnostic; :meth:`functional_bfv_params` threads the tag into
    # BfvParams for callers that instantiate real crypto for a simulated
    # deployment.
    compute_backend: str = "auto"
    # Offline precompute pool size for functional runs of this deployment
    # (None defers to REPRO_WORKERS, then 1). The simulator's `parallelism`
    # knob models the same resource analytically; `workers` is what an
    # actual HybridProtocol built for this deployment hands to its
    # PrecomputePool. Resolve via :meth:`precompute_workers`.
    workers: int | None = None

    def functional_bfv_params(self, n: int = 256, t_bits: int = 17):
        """BFV parameters for a functional run of this deployment.

        Returns vectorization-friendly parameters carrying this config's
        ``compute_backend`` preference, so a :class:`~repro.core.protocol.
        HybridProtocol` built from them runs the crypto substrate on the
        backend the deployment specifies.
        """
        from repro.he.params import fast_params

        return fast_params(n=n, t_bits=t_bits, backend=self.compute_backend)

    def precompute_workers(self) -> int:
        """Resolved offline pool size (explicit > REPRO_WORKERS > 1)."""
        from repro.runtime.pool import resolve_workers

        return resolve_workers(self.workers, default=1)

    def functional_protocol(self, network, n: int = 256, t_bits: int = 17, **kwargs):
        """A HybridProtocol configured like this deployment.

        Threads the deployment's compute backend (via
        :meth:`functional_bfv_params`), garbling role, and offline pool
        size into a functional protocol instance, so a simulated
        configuration can be executed for real with one call.
        """
        from repro.core.protocol import HybridProtocol
        from repro.profiling.model_costs import Protocol as ProtocolKind

        kwargs.setdefault(
            "garbler",
            "client" if self.protocol is ProtocolKind.CLIENT_GARBLER else "server",
        )
        kwargs.setdefault("workers", self.precompute_workers())
        return HybridProtocol(
            network, self.functional_bfv_params(n=n, t_bits=t_bits), **kwargs
        )

    def functional_store(self, root, byte_budget: float | None = None):
        """A :class:`~repro.runtime.PrecomputeStore` for this deployment.

        The store's global byte budget defaults to this config's
        ``client_storage_bytes`` — the functional analogue of the
        simulator's storage container. Pass an explicit ``byte_budget``
        (or ``0`` for unbounded) for scaled-down functional runs whose
        tiny precomputes would never pressure a 16 GB budget.
        """
        from repro.runtime.store import PrecomputeStore

        budget = self.client_storage_bytes if byte_budget is None else byte_budget
        return PrecomputeStore(
            root, byte_budget=int(budget) if budget else None
        )

    def link(self) -> TddLink:
        volumes = self.profile.comm(self.protocol)
        fraction = optimal_upload_fraction(volumes) if self.wsa else 0.5
        return TddLink(self.total_bps, fraction)

    @property
    def precompute_footprint(self) -> float:
        """Client bytes held per buffered pre-compute."""
        return self.profile.storage(self.protocol).client_bytes

    @property
    def buffer_capacity(self) -> int:
        """How many pre-computes the client can hold at once."""
        return int(self.client_storage_bytes // self.precompute_footprint)


@dataclass(frozen=True)
class PipelineTimes:
    """Durations of the offline pipeline stages for one pre-compute."""

    client_he: float
    server_he: float
    garble: float
    offline_up_bytes: float
    offline_down_bytes: float


def pipeline_times(config: SystemConfig) -> PipelineTimes:
    profile, protocol = config.profile, config.protocol
    if config.parallelism is OfflineParallelism.LPHE:
        server_he = profile.he_lphe_seconds(config.server, config.server.cores)
    else:  # SEQUENTIAL and RLP both run one layer at a time on one core
        server_he = profile.he_sequential_seconds(config.server)
    garbler = config.client if protocol is Protocol.CLIENT_GARBLER else config.server
    garble = profile.garble_seconds(garbler)
    if config.parallelism is OfflineParallelism.RLP:
        garble *= garbler.cores  # single-core worker on a multi-core budget
    volumes = profile.comm(protocol)
    return PipelineTimes(
        client_he=profile.client_he_seconds(config.client),
        server_he=server_he,
        garble=garble,
        offline_up_bytes=volumes.offline_up,
        offline_down_bytes=volumes.offline_down,
    )


@dataclass
class SimulationResult:
    """Aggregated outcome of one replication."""

    requests: list[InferenceRequest]

    @property
    def completed(self) -> list[InferenceRequest]:
        return [r for r in self.requests if r.completion_time is not None]

    def _mean(self, values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_latency(self) -> float:
        return self._mean([r.latency for r in self.completed])

    @property
    def mean_queue(self) -> float:
        return self._mean([r.queue_seconds for r in self.completed])

    @property
    def mean_offline(self) -> float:
        return self._mean([r.offline_seconds for r in self.completed])

    @property
    def mean_online(self) -> float:
        return self._mean([r.online_seconds for r in self.completed])

    @property
    def precompute_hit_rate(self) -> float:
        done = self.completed
        if not done:
            return 0.0
        return sum(1 for r in done if r.used_precompute) / len(done)


class PiSystemSimulator:
    """Discrete-event model of the two-party PI serving system."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.times = pipeline_times(config)
        self.link = config.link()

    # -- simulation processes ---------------------------------------------------

    def _transfer(self, env, resource: Resource, seconds: float):
        yield resource.request()
        yield env.timeout(seconds)
        resource.release()

    def _use(self, env, resource: Resource, seconds: float):
        yield resource.request()
        yield env.timeout(seconds)
        resource.release()

    def _offline_pipeline(self, env, rig):
        """One pre-compute: client HE, server HE, garbling, transfers."""
        t = self.times
        yield from self._use(env, rig["client_he"], t.client_he)
        yield from self._use(env, rig["server_he"], t.server_he)
        yield from self._use(env, rig["garble"], t.garble)
        yield from self._transfer(
            env, rig["up"], self.link.upload_seconds(t.offline_up_bytes)
        )
        yield from self._transfer(
            env, rig["down"], self.link.download_seconds(t.offline_down_bytes)
        )

    def _worker(self, env, rig):
        """Continuously refill the pre-compute buffer while storage allows."""
        footprint = self.config.precompute_footprint
        while True:
            yield rig["storage"].get(footprint)
            yield env.process(self._offline_pipeline(env, rig))
            rig["buffer"].put(object())

    def _serve(self, env, rig, request: InferenceRequest, workers_enabled: bool):
        profile, config = self.config.profile, self.config
        yield rig["service"].request()
        request.service_start = env.now
        start = env.now
        reserved = False
        if workers_enabled:
            yield rig["buffer"].get()
            request.used_precompute = request.service_start == env.now
            reserved = True
        else:
            yield env.process(self._offline_pipeline(env, rig))
        request.offline_seconds = env.now - start

        online_start = env.now
        volumes = profile.comm(config.protocol)
        yield from self._transfer(
            env, rig["up"], self.link.upload_seconds(volumes.online_up)
        )
        yield from self._transfer(
            env, rig["down"], self.link.download_seconds(volumes.online_down)
        )
        evaluator = (
            config.client
            if config.protocol is Protocol.SERVER_GARBLER
            else config.server
        )
        yield from self._use(env, rig["eval"], profile.gc_eval_seconds(evaluator))
        yield env.timeout(profile.ss_online_seconds(config.server))
        request.online_seconds = env.now - online_start
        request.completion_time = env.now
        rig["service"].release()
        if reserved:
            yield rig["storage"].put(config.precompute_footprint)

    def _arrivals(self, env, rig, arrival_times, requests, workers_enabled):
        previous = 0.0
        for index, at in enumerate(arrival_times):
            yield env.timeout(at - previous)
            previous = at
            request = InferenceRequest(index=index, arrival_time=env.now)
            requests.append(request)
            env.process(self._serve(env, rig, request, workers_enabled))

    # -- entry point -----------------------------------------------------------

    def run(self, workload: PoissonWorkload, drain: bool = True) -> SimulationResult:
        """Simulate one replication of the workload.

        With ``drain`` the simulation runs until every arrived request
        completes (the paper reports mean latency over all requests of the
        24 h window).
        """
        env = Environment()
        config = self.config
        workers_enabled = config.buffer_capacity >= 1
        rlp = config.parallelism is OfflineParallelism.RLP
        # The buffer starts full (steady-state assumption, as in the paper's
        # Figure 7 where the near-zero-rate latency is purely online).
        prefill = config.buffer_capacity if workers_enabled else 0
        rig = {
            "service": Resource(env, 1),
            "up": Resource(env, 1),
            "down": Resource(env, 1),
            "client_he": Resource(env, config.client.cores if rlp else 1),
            "server_he": Resource(env, config.server.cores if rlp else 1),
            "garble": Resource(
                env,
                (config.client.cores if config.protocol is Protocol.CLIENT_GARBLER
                 else config.server.cores) if rlp else 1,
            ),
            "eval": Resource(env, 1),
            "storage": Container(
                env, max(config.client_storage_bytes, 1.0),
                init=config.client_storage_bytes
                - prefill * config.precompute_footprint,
            ),
            "buffer": Store(env),
        }
        for _ in range(prefill):
            rig["buffer"].put(object())
        requests: list[InferenceRequest] = []
        env.process(
            self._arrivals(env, rig, workload.arrival_times(), requests, workers_enabled)
        )
        if workers_enabled:
            worker_count = (
                min(config.server.cores, max(1, config.buffer_capacity))
                if rlp
                else 1
            )
            for _ in range(worker_count):
                env.process(self._worker(env, rig))
        env.run(until=workload.horizon)
        if drain:
            # Let in-flight requests finish (workers eventually idle once the
            # buffer and storage fill, so the event queue drains naturally).
            env.run(until=workload.horizon + 1000 * 24 * 3600)
        return SimulationResult(requests=list(requests))


def simulate_mean_latency(
    config: SystemConfig,
    mean_interarrival: float,
    horizon: float = 24 * 3600,
    replications: int = 5,
    seed: int = 0,
) -> dict[str, float]:
    """Replicate the workload and average the latency decomposition."""
    totals = {"latency": 0.0, "queue": 0.0, "offline": 0.0, "online": 0.0, "hit": 0.0}
    sim = PiSystemSimulator(config)
    for rep in range(replications):
        workload = PoissonWorkload(mean_interarrival, horizon, seed=seed + rep)
        result = sim.run(workload)
        totals["latency"] += result.mean_latency
        totals["queue"] += result.mean_queue
        totals["offline"] += result.mean_offline
        totals["online"] += result.mean_online
        totals["hit"] += result.precompute_hit_rate
    return {key: value / replications for key, value in totals.items()}
