"""Exclusive-time phase accounting for latency decomposition.

A :class:`PhaseClock` window answers "where did this wall-clock interval
go" with buckets that sum *exactly* to the window's duration: queue /
store / he_linear / gc / ot / wire. It works like a tiny sampling-free
profiler — a per-thread phase stack where entering a phase accrues the
elapsed time since the last transition to the *previous* stack top, and
leaving accrues to the phase being popped. Time not claimed by any
phase lands in the root bucket (``wire`` by convention: serialization,
framing, socket writes, and scheduler glue are the residue of a serving
window once compute and waiting are attributed).

Windows are per-thread (thread-local), opened only by serving drivers
(``ServingLoop.run`` / ``ServingGateway.serve``) when telemetry is on;
``phase()`` is safe to call unconditionally from any thread — without
an open window on that thread it returns a shared no-op.
"""

from __future__ import annotations

import threading
import time

__all__ = ["PhaseClock", "PHASE_NAMES"]

# The decomposition taxonomy. "queue" = selector/scheduler waits,
# "store" = precompute store I/O, the three protocol buckets are the
# cryptographic phases, "wire" = root/residue (framing + transport).
PHASE_NAMES = ("queue", "store", "he_linear", "gc", "ot", "wire")


class _NullPhase:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_PHASE = _NullPhase()


class _Window:
    __slots__ = ("stack", "totals", "mark")

    def __init__(self, root: str):
        self.stack = [root]
        self.totals: dict[str, float] = {}
        self.mark = time.perf_counter()

    def _accrue(self, name: str, now: float) -> None:
        elapsed = now - self.mark
        self.mark = now
        if elapsed > 0.0:
            self.totals[name] = self.totals.get(name, 0.0) + elapsed


class _Phase:
    __slots__ = ("_window", "_name")

    def __init__(self, window: _Window, name: str):
        self._window = window
        self._name = name

    def __enter__(self):
        window = self._window
        now = time.perf_counter()
        window._accrue(window.stack[-1], now)
        window.stack.append(self._name)
        return self

    def __exit__(self, *exc):
        window = self._window
        now = time.perf_counter()
        window._accrue(window.stack[-1], now)
        if len(window.stack) > 1:
            window.stack.pop()
        return False


class WindowHandle:
    """Caller-facing handle; ``close()`` returns the totals dict."""

    __slots__ = ("_clock", "_window")

    def __init__(self, clock: "PhaseClock", window: _Window):
        self._clock = clock
        self._window = window

    def close(self) -> dict[str, float]:
        """Close the window; totals sum exactly to its wall-clock."""
        window = self._window
        now = time.perf_counter()
        # Accrue the tail to whatever is still open, unwinding to root.
        while len(window.stack) > 1:
            window._accrue(window.stack.pop(), now)
        window._accrue(window.stack[0], now)
        if getattr(self._clock._local, "window", None) is window:
            self._clock._local.window = None
        return dict(window.totals)


class PhaseClock:
    """Thread-local exclusive-time windows with a push/pop phase stack."""

    def __init__(self):
        self._local = threading.local()

    def open_window(self, root: str = "wire") -> WindowHandle:
        if getattr(self._local, "window", None) is not None:
            raise RuntimeError("a phase window is already open on this thread")
        window = _Window(root)
        self._local.window = window
        return WindowHandle(self, window)

    def phase(self, name: str):
        """Enter a phase if a window is open on this thread; no-op if not."""
        window = getattr(self._local, "window", None)
        if window is None:
            return _NULL_PHASE
        return _Phase(window, name)
