"""Cross-process metrics registry: counters, gauges, log-bucket histograms.

Series are keyed Prometheus-style — ``name{label="value",...}`` with
sorted labels — which makes the key both the in-memory dict key and the
exposition identity, so :func:`snapshot_to_prometheus` /
:func:`prometheus_to_snapshot` round-trip exactly (the CI contract).

Merging is commutative and associative so worker-process snapshots can
arrive in any order and produce identical registries: counters and
histogram buckets *add*, gauges take the *max* (occupancy-style gauges
want the high-water mark across processes).

When disabled, every factory returns a shared no-op singleton: no
allocation, no locking — the hot path pays one attribute check.
"""

from __future__ import annotations

import re
import threading

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "HISTOGRAM_BOUNDS",
    "snapshot_to_prometheus",
    "prometheus_to_snapshot",
]

# Fixed log2-scale bounds shared by every histogram: 2^-20 (~1 us, as
# seconds) through 2^10, plus the +Inf overflow bucket. One global
# layout keeps cross-process bucket merges a plain elementwise add.
HISTOGRAM_BOUNDS = tuple(2.0 ** e for e in range(-20, 11))

_LABEL_ESCAPE = str.maketrans({"\\": "\\\\", '"': '\\"'})
_SERIES_RE = re.compile(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?$')
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def series_key(name: str, labels: dict) -> str:
    """Canonical series identity: name plus sorted, escaped labels."""
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{str(v).translate(_LABEL_ESCAPE)}"'
        for k, v in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


def _parse_series_key(key: str) -> tuple[str, dict]:
    match = _SERIES_RE.match(key)
    if not match:
        raise ValueError(f"unparseable series key {key!r}")
    name, raw = match.group(1), match.group(2)
    labels = {}
    if raw:
        for lmatch in _LABEL_RE.finditer(raw):
            value = lmatch.group(2).replace('\\"', '"').replace("\\\\", "\\")
            labels[lmatch.group(1)] = value
    return name, labels


class _NullInstrument:
    """Shared no-op counter/gauge/histogram while metrics are disabled."""

    __slots__ = ()

    def inc(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


_NULL_INSTRUMENT = _NullInstrument()


class Counter:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed log-scale buckets; supports quantile estimation and merge."""

    __slots__ = ("buckets", "sum", "count")

    def __init__(self):
        # One count per bound in HISTOGRAM_BOUNDS, plus the +Inf bucket.
        self.buckets = [0] * (len(HISTOGRAM_BOUNDS) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        # Linear scan is fine: 31 bounds, and observations are
        # request-granularity, not per-coefficient.
        for i, bound in enumerate(HISTOGRAM_BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                break
        else:
            self.buckets[-1] += 1
        self.sum += value
        self.count += 1

    def quantile(self, p: float) -> float:
        """Estimate the p-quantile by linear interpolation in-bucket."""
        if self.count == 0:
            return 0.0
        target = p * self.count
        seen = 0
        for i, bucket_count in enumerate(self.buckets):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= target:
                lo = 0.0 if i == 0 else HISTOGRAM_BOUNDS[i - 1]
                hi = (HISTOGRAM_BOUNDS[i] if i < len(HISTOGRAM_BOUNDS)
                      else HISTOGRAM_BOUNDS[-1])
                frac = (target - seen) / bucket_count
                return lo + (hi - lo) * min(1.0, max(0.0, frac))
            seen += bucket_count
        return HISTOGRAM_BOUNDS[-1]


class MetricsRegistry:
    """Thread-safe series registry with deterministic merge semantics."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _get(self, table, factory, name, labels):
        key = series_key(name, labels)
        with self._lock:
            instrument = table.get(key)
            if instrument is None:
                instrument = table[key] = factory()
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self._get(self._histograms, Histogram, name, labels)

    # -- snapshot / merge ------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict copy, safe to pickle across process boundaries."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: {"buckets": list(h.buckets), "sum": h.sum,
                        "count": h.count}
                    for k, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot in: counters/buckets add, gauges take max."""
        if not snapshot:
            return
        with self._lock:
            for key, value in snapshot.get("counters", {}).items():
                counter = self._counters.get(key)
                if counter is None:
                    counter = self._counters[key] = Counter()
                counter.value += value
            for key, value in snapshot.get("gauges", {}).items():
                gauge = self._gauges.get(key)
                if gauge is None:
                    gauge = self._gauges[key] = Gauge()
                gauge.value = max(gauge.value, float(value))
            for key, data in snapshot.get("histograms", {}).items():
                hist = self._histograms.get(key)
                if hist is None:
                    hist = self._histograms[key] = Histogram()
                for i, n in enumerate(data["buckets"]):
                    hist.buckets[i] += n
                hist.sum += data["sum"]
                hist.count += data["count"]

    def to_prometheus(self) -> str:
        return snapshot_to_prometheus(self.snapshot())

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# -- Prometheus text exposition ---------------------------------------------------


def _format_value(value) -> str:
    if isinstance(value, int) and not isinstance(value, bool):
        return str(value)
    return repr(float(value))


def _split_key(key: str) -> tuple[str, str]:
    """Split a series key into (name, label body or '')."""
    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace + 1:-1]


def _with_label(key: str, extra: str) -> str:
    """Append one label term after the existing (sorted) user labels."""
    name, body = _split_key(key)
    body = f"{body},{extra}" if body else extra
    return f"{name}{{{body}}}"


def snapshot_to_prometheus(snapshot: dict) -> str:
    """Render a snapshot as Prometheus text exposition.

    Deterministic: series sorted by key, histograms expanded into
    cumulative ``_bucket{le=...}`` terms plus ``_sum``/``_count``. The
    inverse is :func:`prometheus_to_snapshot`; round-tripping text
    through both is exact.
    """
    lines = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})

    seen_types = set()

    def type_line(key, kind):
        name, _ = _split_key(key)
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key in sorted(counters):
        type_line(key, "counter")
        lines.append(f"{key} {_format_value(counters[key])}")
    for key in sorted(gauges):
        type_line(key, "gauge")
        lines.append(f"{key} {_format_value(gauges[key])}")
    for key in sorted(histograms):
        data = histograms[key]
        name, _ = _split_key(key)
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for i, bucket_count in enumerate(data["buckets"]):
            cumulative += bucket_count
            le = (repr(HISTOGRAM_BOUNDS[i]) if i < len(HISTOGRAM_BOUNDS)
                  else "+Inf")
            bucket_key = _with_label(
                f"{name}_bucket" + key[len(name):], f'le="{le}"'
            )
            lines.append(f"{bucket_key} {cumulative}")
        lines.append(f"{name}_sum{key[len(name):]} "
                     f"{_format_value(data['sum'])}")
        lines.append(f"{name}_count{key[len(name):]} {data['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def prometheus_to_snapshot(text: str) -> dict:
    """Parse text exposition produced by :func:`snapshot_to_prometheus`.

    The inverse of the renderer for its own output format; raises
    ``ValueError`` on lines it cannot attribute.
    """
    types: dict[str, str] = {}
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}

    def hist_entry(key):
        entry = histograms.get(key)
        if entry is None:
            entry = histograms[key] = {
                "buckets": [0] * (len(HISTOGRAM_BOUNDS) + 1),
                "sum": 0.0,
                "count": 0,
                "_cumulative": [],
            }
        return entry

    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        space = line.rfind(" ")
        if space < 0:
            raise ValueError(f"line {lineno}: no value in {line!r}")
        key, raw_value = line[:space], line[space + 1:]
        name, labels = _parse_series_key(key)

        base = None
        for suffix in ("_bucket", "_sum", "_count"):
            candidate = name[:-len(suffix)] if name.endswith(suffix) else None
            if candidate and types.get(candidate) == "histogram":
                base = candidate
                break
        if base is not None:
            suffix = name[len(base):]
            le = labels.pop("le", None)
            base_key = series_key(base, labels)
            entry = hist_entry(base_key)
            if suffix == "_bucket":
                if le is None:
                    raise ValueError(f"line {lineno}: bucket without le")
                entry["_cumulative"].append((le, int(raw_value)))
            elif suffix == "_sum":
                entry["sum"] = float(raw_value)
            else:
                entry["count"] = int(raw_value)
            continue

        kind = types.get(name)
        if kind == "counter":
            counters[key] = int(raw_value)
        elif kind == "gauge":
            gauges[key] = float(raw_value)
        else:
            raise ValueError(f"line {lineno}: series {key!r} has no "
                             f"preceding # TYPE line")

    bound_order = {repr(b): i for i, b in enumerate(HISTOGRAM_BOUNDS)}
    bound_order["+Inf"] = len(HISTOGRAM_BOUNDS)
    for key, entry in histograms.items():
        cumulative = entry.pop("_cumulative")
        prev = 0
        for le, value in sorted(cumulative, key=lambda t: bound_order[t[0]]):
            entry["buckets"][bound_order[le]] = value - prev
            prev = value
    return {"counters": counters, "gauges": gauges, "histograms": histograms}
