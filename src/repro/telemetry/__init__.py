"""Telemetry spine: span tracing, metrics registry, phase accounting.

Three process-global singletons — :data:`TRACER`, :data:`METRICS`,
:data:`PHASES` — shared by every instrumented module. All three are
disabled by default and cost one attribute check per call site when
off, so the hot path is unchanged and transcripts stay byte-identical
whether telemetry is on or off (nothing here touches RNG state or wire
messages).

Enable via :func:`configure`, the ``REPRO_TELEMETRY`` environment
variable (read once at import), or the ``--telemetry`` CLI flags.
Worker-process telemetry is *not* inherited from the environment: the
pool wraps jobs explicitly (``pool._run_traced_job``) and ships events
and metric snapshots back through the ``AsyncJob`` result, merged here
by :func:`merge_worker_payload`.

This package imports nothing from the rest of ``repro`` at module
scope, so any module — including ``repro/__init__`` itself — can import
it without cycles.
"""

from __future__ import annotations

import os

from .metrics import (
    HISTOGRAM_BOUNDS,
    MetricsRegistry,
    prometheus_to_snapshot,
    snapshot_to_prometheus,
)
from .phases import PHASE_NAMES, PhaseClock
from .trace import (
    Tracer,
    now_us,
    read_trace_events,
    validate_trace_events,
)

__all__ = [
    "TRACER",
    "METRICS",
    "PHASES",
    "PHASE_NAMES",
    "HISTOGRAM_BOUNDS",
    "MetricsRegistry",
    "PhaseClock",
    "Tracer",
    "configure",
    "enabled",
    "merge_worker_payload",
    "now_us",
    "prometheus_to_snapshot",
    "read_trace_events",
    "record_frame",
    "section",
    "snapshot_to_prometheus",
    "span",
    "validate_trace_events",
]

TRACER = Tracer()
METRICS = MetricsRegistry()
PHASES = PhaseClock()


def configure(enabled: bool) -> None:
    """Turn tracing and metrics on or off for this process."""
    TRACER.enabled = bool(enabled)
    METRICS.enabled = bool(enabled)


def enabled() -> bool:
    return TRACER.enabled


def span(name: str, track: int | None = None, **args):
    """Shorthand for ``TRACER.span``."""
    return TRACER.span(name, track=track, **args)


class _Section:
    """A phase bucket + trace span entered and exited together."""

    __slots__ = ("_phase", "_span")

    def __init__(self, phase, span_cm):
        self._phase = phase
        self._span = span_cm

    def __enter__(self):
        self._phase.__enter__()
        self._span.__enter__()
        return self

    def __exit__(self, *exc):
        self._span.__exit__(*exc)
        self._phase.__exit__(*exc)
        return False


from .trace import _NULL_SPAN  # noqa: E402  (no-op singleton, shared)


def section(phase_name: str, span_name: str | None = None, **args):
    """Attribute a code block to a decomposition phase and trace it.

    The phase charge only lands if the calling thread has an open
    :class:`PhaseClock` window; the span only records if tracing is
    enabled. Disabled entirely, this is the shared no-op.
    """
    if not TRACER.enabled:
        return _NULL_SPAN
    phase = PHASES.phase(phase_name)
    span_cm = TRACER.span(span_name, **args) if span_name else _NULL_SPAN
    return _Section(phase, span_cm)


def record_frame(direction: str, frame: bytes) -> None:
    """Count one wire frame by direction and decoded message format."""
    if not METRICS.enabled:
        return
    from repro.network.serialize import frame_format_name

    fmt = frame_format_name(frame)
    METRICS.counter("transport_frames_total", dir=direction, format=fmt).inc()
    METRICS.counter("transport_bytes_total", dir=direction, format=fmt).inc(
        len(frame)
    )


def merge_worker_payload(payload) -> None:
    """Fold a worker's ``(trace_events, metrics_snapshot)`` into ours."""
    if not payload:
        return
    events, snapshot = payload
    TRACER.ingest(events)
    METRICS.merge(snapshot)


if os.environ.get("REPRO_TELEMETRY", "").strip().lower() in {"1", "true", "on"}:
    configure(True)
