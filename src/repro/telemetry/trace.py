"""Span tracer exporting Chrome-trace-event JSONL (Perfetto-loadable).

The tracer records *complete* events (``ph: "X"``) with microsecond
monotonic timestamps, the recording process id, and a track id: either
the real OS thread id (for atomic leaf spans — HE/GC/OT primitives,
store operations, gateway steps) or a synthetic *virtual track* (for
logical spans that interleave on one real thread, such as resumable
session phases or per-connection request windows). Virtual tracks start
at ``1 << 24`` — above Linux's pid_max ceiling of ``2**22`` — so they
can never collide with a real thread id, and each gets a
``thread_name`` metadata event so Perfetto labels the lane.

Every event carries ``ts``/``dur``/``pid``/``tid`` (``dur`` 0 for
instants and metadata), which is the schema contract
:func:`validate_trace_events` enforces, along with proper nesting of
complete events per ``(pid, tid)`` lane.

When disabled, every API returns a shared no-op singleton: no
allocation, no locking, no timestamps — the hot path pays one attribute
check.
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = [
    "Tracer",
    "TimedSpan",
    "StepTimer",
    "now_us",
    "read_trace_events",
    "validate_trace_events",
]

# First synthetic track id. Linux pid_max is capped at 2**22, so real
# thread ids (used directly as trace tids) always stay below this.
_VIRTUAL_TRACK_BASE = 1 << 24

_REQUIRED_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


def now_us() -> int:
    """Microseconds on the system-wide monotonic clock.

    ``CLOCK_MONOTONIC`` is shared across processes on Linux, so events
    recorded inside pool workers land on the same timeline as the
    parent's when merged.
    """
    return time.monotonic_ns() // 1000


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live ``ph: "X"`` span; records on exit."""

    __slots__ = ("_tracer", "_name", "_tid", "_args", "_start_us")

    def __init__(self, tracer, name, tid, args):
        self._tracer = tracer
        self._name = name
        self._tid = tid
        self._args = args
        self._start_us = 0

    def __enter__(self):
        self._start_us = now_us()
        return self

    def __exit__(self, *exc):
        self._tracer._record(
            self._name, self._start_us, now_us(), self._tid, self._args
        )
        return False


class TimedSpan:
    """A span that always measures wall time into ``.seconds``.

    Used where a ``ServingReport`` field needs the duration: the
    ``perf_counter`` measurement happens whether or not tracing is
    enabled (keeping report values semantically identical either way);
    the trace event is only recorded when enabled.
    """

    __slots__ = ("_tracer", "_name", "_tid", "_args", "_start", "_start_us",
                 "seconds")

    def __init__(self, tracer, name, tid, args):
        self._tracer = tracer
        self._name = name
        self._tid = tid
        self._args = args
        self._start = 0.0
        self._start_us = 0
        self.seconds = 0.0

    def __enter__(self):
        if self._tracer is not None:
            self._start_us = now_us()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.seconds = time.perf_counter() - self._start
        if self._tracer is not None:
            self._tracer._record(
                self._name, self._start_us, now_us(), self._tid, self._args
            )
        return False


class StepTimer:
    """Accumulate active (resumed) time of a generator, span the window.

    ``drive(gen)`` re-yields every value from ``gen`` while accruing
    only the time spent *inside* resumptions into ``.seconds`` — the
    exact semantics of the per-step ``perf_counter`` bookkeeping it
    replaces in ``serving.py`` (including the final resumption that
    raises ``StopIteration``). When tracing is enabled, one wall-clock
    span (first resumption to exhaustion, on its own virtual track)
    is emitted with the active time attached as an argument.
    """

    __slots__ = ("_tracer", "_name", "_args", "seconds")

    def __init__(self, tracer, name, args):
        self._tracer = tracer
        self._name = name
        self._args = args
        self.seconds = 0.0

    def drive(self, gen):
        tracer = self._tracer
        start_us = now_us() if tracer is not None else 0
        try:
            while True:
                t0 = time.perf_counter()
                try:
                    value = next(gen)
                except StopIteration as stop:
                    self.seconds += time.perf_counter() - t0
                    return stop.value
                self.seconds += time.perf_counter() - t0
                yield value
        finally:
            if tracer is not None:
                args = dict(self._args)
                args["active_seconds"] = round(self.seconds, 6)
                tracer._record(
                    self._name, start_us, now_us(),
                    tracer.new_track(self._name), args,
                )


class Tracer:
    """Process-local trace-event buffer with a global enable flag."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._pid = os.getpid()
        self._next_track = _VIRTUAL_TRACK_BASE
        self._track_seq = 0

    # -- recording -------------------------------------------------------------

    def _record(self, name, start_us, end_us, tid, args):
        event = {
            "name": name,
            "ph": "X",
            "ts": start_us,
            "dur": max(0, end_us - start_us),
            "pid": self._pid,
            "tid": tid if tid is not None else threading.get_native_id(),
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    def span(self, name: str, track: int | None = None, **args):
        """Context manager recording a complete event around its body."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, track, args)

    def timed_span(self, name: str, track: int | None = None, **args):
        """A span whose ``.seconds`` is measured even when disabled."""
        return TimedSpan(self if self.enabled else None, name, track, args)

    def step_timer(self, name: str, **args) -> StepTimer:
        """Per-resumption generator timer (see :class:`StepTimer`)."""
        return StepTimer(self if self.enabled else None, name, args)

    def emit_since(self, name: str, start_us: int, tid: int | None = None,
                   **args) -> None:
        """Record a complete event from a caller-held start timestamp."""
        if not self.enabled:
            return
        self._record(name, start_us, now_us(), tid, args)

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration instant event (``ph: "i"``)."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "ph": "i",
            "ts": now_us(),
            "dur": 0,
            "pid": self._pid,
            "tid": threading.get_native_id(),
            "s": "t",
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    def new_track(self, label: str) -> int:
        """Allocate a fresh virtual track and name its Perfetto lane."""
        with self._lock:
            tid = self._next_track
            self._next_track += 1
            self._track_seq += 1
            seq = self._track_seq
            if self.enabled:
                self._events.append({
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "dur": 0,
                    "pid": self._pid,
                    "tid": tid,
                    "args": {"name": f"{label}#{seq}"},
                })
        return tid

    # -- buffer management -----------------------------------------------------

    def drain(self) -> list[dict]:
        """Remove and return all buffered events."""
        with self._lock:
            events, self._events = self._events, []
        return events

    def ingest(self, events) -> None:
        """Merge events recorded elsewhere (e.g. a pool worker)."""
        if not events:
            return
        with self._lock:
            self._events.extend(events)

    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def export_jsonl(self, path) -> int:
        """Write one JSON object per line; returns the event count."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event, sort_keys=True))
                fh.write("\n")
        return len(events)

    def reset(self) -> None:
        """Clear the buffer and re-cache the pid (after fork)."""
        with self._lock:
            self._events = []
            self._pid = os.getpid()
            self._next_track = _VIRTUAL_TRACK_BASE
            self._track_seq = 0


# -- trace-file schema validation -------------------------------------------------


def read_trace_events(path) -> list[dict]:
    """Parse a JSONL trace file into a list of event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}")
            if not isinstance(event, dict):
                raise ValueError(f"{path}:{lineno}: event is not an object")
            events.append(event)
    return events


def validate_trace_events(events) -> int:
    """Check the schema contract; returns the event count.

    Every event must carry ``name``/``ph``/``ts``/``dur``/``pid``/
    ``tid`` with non-negative integer timestamps, and complete events
    must nest properly per ``(pid, tid)`` lane: sorted by start time, a
    span may sit inside the enclosing span or after it, never partially
    overlapping. Raises ``ValueError`` on the first violation.
    """
    lanes: dict[tuple, list] = {}
    for i, event in enumerate(events):
        for key in _REQUIRED_KEYS:
            if key not in event:
                raise ValueError(f"event {i} ({event.get('name')!r}): "
                                 f"missing {key!r}")
        for key in ("ts", "dur", "pid", "tid"):
            value = event[key]
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"event {i} ({event['name']!r}): "
                                 f"{key}={value!r} is not an int")
            if value < 0:
                raise ValueError(f"event {i} ({event['name']!r}): "
                                 f"{key}={value!r} is negative")
        if event["ph"] == "X":
            lanes.setdefault((event["pid"], event["tid"]), []).append(event)

    for (pid, tid), lane in lanes.items():
        # Longest-first at equal start times, so a parent precedes the
        # children it encloses.
        lane.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[int] = []  # end timestamps of open spans
        for event in lane:
            start, end = event["ts"], event["ts"] + event["dur"]
            while stack and stack[-1] <= start:
                stack.pop()
            if stack and end > stack[-1]:
                raise ValueError(
                    f"lane pid={pid} tid={tid}: span {event['name']!r} "
                    f"[{start}, {end}) overlaps its enclosing span "
                    f"(open until {stack[-1]})"
                )
            stack.append(end)
    return len(events)
